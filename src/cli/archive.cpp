#include "cli/archive.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/codec_factory.hpp"
#include "core/partial_serializer.hpp"
#include "core/triangle.hpp"
#include "io/byte_reader.hpp"
#include "io/checksum.hpp"
#include "io/error.hpp"
#include "io/tensor_io.hpp"

namespace aic::cli {

using io::CorruptKind;
using io::raise_corrupt;
using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr char kMagic[4] = {'A', 'I', 'C', 'Z'};

// The u8 codec-kind field of the header.
constexpr std::uint8_t kKindSquare = 0;
constexpr std::uint8_t kKindTriangle = 1;
constexpr std::uint8_t kKindPartial = 2;

// Any header dim above this is treated as hostile before the codec's
// shape math (which multiplies dims) ever sees it.
constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 32;

template <typename T>
void append(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

/// The header fields shared by v2 and v3 (everything between the
/// version/CRC block and the payload), as one byte string so v3 can
/// checksum it as a unit.
std::string serialize_header_fields(const Archive& archive) {
  std::string out;
  const std::uint8_t kind = archive.subdivision > 1 ? kKindPartial
                            : archive.triangle     ? kKindTriangle
                                                   : kKindSquare;
  append<std::uint8_t>(out, kind);
  append<std::uint8_t>(out,
                       static_cast<std::uint8_t>(archive.config.transform));
  append<std::uint16_t>(out, static_cast<std::uint16_t>(archive.config.cf));
  append<std::uint16_t>(out,
                        static_cast<std::uint16_t>(archive.config.block));
  append<std::uint16_t>(out,
                        static_cast<std::uint16_t>(archive.subdivision));
  append<std::uint32_t>(
      out, static_cast<std::uint32_t>(archive.original_shape.rank()));
  for (std::size_t axis = 0; axis < archive.original_shape.rank(); ++axis) {
    append<std::uint64_t>(out, archive.original_shape[axis]);
  }
  return out;
}

/// Parses the shared v2/v3 header fields into `archive`, validating
/// every field with a typed diagnostic.
void parse_header_fields(io::ByteReader& reader, Archive& archive) {
  const std::uint8_t kind = reader.read<std::uint8_t>("codec kind");
  if (kind > kKindPartial) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: unknown codec kind " + std::to_string(kind) +
                      " (supported: 0=square, 1=triangle, 2=partial)");
  }
  archive.triangle = kind == kKindTriangle;
  const std::uint8_t transform = reader.read<std::uint8_t>("transform");
  if (transform > static_cast<std::uint8_t>(core::TransformKind::kDst2)) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: unknown transform " + std::to_string(transform));
  }
  archive.config.transform = static_cast<core::TransformKind>(transform);
  archive.config.cf = reader.read<std::uint16_t>("cf");
  archive.config.block = reader.read<std::uint16_t>("block");
  archive.subdivision = reader.read<std::uint16_t>("subdivision");
  if (archive.subdivision == 0 ||
      (kind == kKindPartial) != (archive.subdivision > 1)) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: subdivision " +
                      std::to_string(archive.subdivision) +
                      " is inconsistent with codec kind " +
                      std::to_string(kind));
  }
  const std::uint32_t rank = reader.read<std::uint32_t>("rank");
  if (rank != 4) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: original rank " + std::to_string(rank) +
                      " (must be 4, BCHW)");
  }
  std::size_t dims[4];
  std::size_t numel = 1;
  for (auto& d : dims) {
    const std::uint64_t dim = reader.read<std::uint64_t>("dims");
    if (dim > kMaxDim) {
      raise_corrupt(CorruptKind::kBadHeaderField,
                    "archive: dim " + std::to_string(dim) +
                        " is implausibly large");
    }
    d = static_cast<std::size_t>(dim);
    numel = io::checked_mul(numel, d, "archive dims");
  }
  // The original tensor must be representable in bytes before any codec
  // shape math multiplies these dims further.
  (void)io::checked_mul(numel, sizeof(float), "archive original bytes");
  archive.original_shape = Shape::bchw(dims[0], dims[1], dims[2], dims[3]);
  archive.config.height = dims[2];
  archive.config.width = dims[3];
}

std::string codec_spec_impl(const Archive& archive, bool pin_shape) {
  const auto& c = archive.config;
  std::ostringstream spec;
  if (archive.subdivision > 1) {
    spec << "partial:cf=" << c.cf << ",block=" << c.block
         << ",s=" << archive.subdivision;
  } else if (archive.triangle) {
    spec << "triangle:cf=" << c.cf << ",block=" << c.block;
  } else {
    spec << "dctchop:cf=" << c.cf << ",block=" << c.block;
  }
  spec << ",transform=" << core::transform_name(c.transform);
  if (pin_shape && c.height != 0) {
    spec << ",h=" << c.height << ",w=" << c.width;
  }
  return spec.str();
}

/// Finishes a parsed archive: check the payload tensor has exactly the
/// shape the header's codec promises. The probe codec is deliberately
/// built WITHOUT pinning height/width: a pinned constructor eagerly
/// compiles the plan (operator matrices sized by the header dims), which
/// would let a mutated-but-plausible dim force a multi-gigabyte
/// allocation before this check can reject it. The shape-agnostic
/// constructor validates the same geometry arithmetically; the real
/// pinned codec is only ever built after the payload has vouched for the
/// dims. Factory/shape errors here are data errors (the header is
/// attacker controlled), so they surface as CorruptStream, not
/// invalid_argument.
void validate_payload_against_header(const Archive& archive) {
  Shape expected;
  try {
    expected = core::make_codec(codec_spec_impl(archive, false))
                   ->compressed_shape(archive.original_shape);
  } catch (const std::exception& error) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  std::string("archive: header describes an invalid codec: ") +
                      error.what());
  }
  if (archive.packed.shape() != expected) {
    raise_corrupt(CorruptKind::kPayloadMismatch,
                  "archive: payload shape " +
                      archive.packed.shape().to_string() +
                      " does not match the header codec's expected shape " +
                      expected.to_string());
  }
}

}  // namespace

std::string archive_codec_spec(const Archive& archive) {
  return codec_spec_impl(archive, true);
}

core::CodecPtr make_archive_codec(const Archive& archive) {
  return core::make_codec(archive_codec_spec(archive));
}

Archive compress_to_archive(const Tensor& input, const std::string& codec_spec,
                            core::CodecPtr* codec_out) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("archive: input must be BCHW");
  }
  const core::CodecPtr codec = core::make_codec(codec_spec);

  Archive archive;
  archive.original_shape = input.shape();
  // The archive header only represents the chop family; recover the
  // parameters from the concrete codec the factory built.
  if (const auto* dc =
          dynamic_cast<const core::DctChopCodec*>(codec.get())) {
    archive.config = dc->config();
  } else if (const auto* sg =
                 dynamic_cast<const core::TriangleCodec*>(codec.get())) {
    archive.triangle = true;
    archive.config = sg->config();
  } else if (const auto* ps =
                 dynamic_cast<const core::PartialSerialCodec*>(codec.get())) {
    archive.subdivision = ps->config().subdivision;
    archive.config = {.height = ps->config().height,
                      .width = ps->config().width,
                      .cf = ps->config().cf,
                      .block = ps->config().block,
                      .transform = ps->config().transform};
  } else {
    throw std::invalid_argument("archive: codec \"" + codec_spec +
                                "\" has no archive representation (use the "
                                "dctchop / triangle / partial family)");
  }
  archive.packed = codec->compress(input);
  // Shape-agnostic specs leave height/width zero; the header pins them
  // to the tensor that was actually compressed.
  archive.config.height = input.shape()[2];
  archive.config.width = input.shape()[3];
  if (codec_out != nullptr) *codec_out = codec;
  return archive;
}

Archive compress_to_archive(const Tensor& input, std::size_t cf,
                            std::size_t block,
                            core::TransformKind transform, bool triangle,
                            core::CodecPtr* codec_out) {
  std::ostringstream spec;
  spec << (triangle ? "triangle" : "dctchop") << ":cf=" << cf
       << ",block=" << block
       << ",transform=" << core::transform_name(transform);
  return compress_to_archive(input, spec.str(), codec_out);
}

std::string serialize_archive(const Archive& archive,
                              std::uint32_t version) {
  if (version != 2 && version != kArchiveVersion) {
    throw std::invalid_argument("archive: cannot write version " +
                                std::to_string(version));
  }
  const std::string header = serialize_header_fields(archive);
  const std::string payload = io::serialize_tensor(archive.packed);

  std::string out;
  out.reserve(sizeof(kMagic) + 16 + header.size() + payload.size());
  out.append(kMagic, sizeof(kMagic));
  append<std::uint32_t>(out, version);
  if (version >= 3) {
    // v3 integrity block: header length + independent CRC32C over the
    // header fields and the payload, so any flipped bit anywhere in the
    // stream is caught before (or instead of) deeper parsing.
    append<std::uint32_t>(out, static_cast<std::uint32_t>(header.size()));
    append<std::uint32_t>(out, io::crc32c(header.data(), header.size()));
    append<std::uint32_t>(out, io::crc32c(payload.data(), payload.size()));
  }
  out += header;
  out += payload;
  return out;
}

Archive deserialize_archive(const std::string& bytes) {
  io::ByteReader reader(bytes, "archive");
  reader.require(sizeof(kMagic), "magic");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    raise_corrupt(CorruptKind::kBadMagic, "archive: bad magic");
  }
  (void)reader.read_bytes(sizeof(kMagic), "magic");
  const std::uint32_t version = reader.read<std::uint32_t>("version");
  if (version < 2 || version > kArchiveVersion) {
    raise_corrupt(CorruptKind::kBadVersion,
                  "archive: found version " + std::to_string(version) +
                      ", supported versions 2.." +
                      std::to_string(kArchiveVersion));
  }

  Archive archive;
  if (version >= 3) {
    const std::uint32_t header_len = reader.read<std::uint32_t>("header size");
    const std::uint32_t header_crc = reader.read<std::uint32_t>("header CRC");
    const std::uint32_t payload_crc =
        reader.read<std::uint32_t>("payload CRC");
    const std::string_view header =
        reader.read_bytes(header_len, "header fields");
    const std::uint32_t computed_header =
        io::crc32c(header.data(), header.size());
    if (computed_header != header_crc) {
      raise_corrupt(CorruptKind::kChecksumMismatch,
                    "archive: header CRC mismatch (stored " +
                        std::to_string(header_crc) + ", computed " +
                        std::to_string(computed_header) + ")");
    }
    io::ByteReader header_reader(header, "archive header");
    parse_header_fields(header_reader, archive);
    if (header_reader.remaining() != 0) {
      raise_corrupt(CorruptKind::kBadHeaderField,
                    "archive: " + std::to_string(header_reader.remaining()) +
                        " trailing bytes after header fields");
    }
    const std::string_view payload = reader.rest();
    const std::uint32_t computed_payload =
        io::crc32c(payload.data(), payload.size());
    if (computed_payload != payload_crc) {
      raise_corrupt(CorruptKind::kChecksumMismatch,
                    "archive: payload CRC mismatch (stored " +
                        std::to_string(payload_crc) + ", computed " +
                        std::to_string(computed_payload) + ")");
    }
  } else {
    // v2 (pre-checksum) archives written before the integrity block
    // stay readable; their payloads are validated structurally only.
    parse_header_fields(reader, archive);
  }
  archive.packed = io::deserialize_tensor(std::string(reader.rest()));
  validate_payload_against_header(archive);
  return archive;
}

void save_archive(const Archive& archive, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("archive: cannot open " + path);
  const std::string bytes = serialize_archive(archive);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("archive: write failed: " + path);
}

Archive load_archive(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("archive: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  return deserialize_archive(bytes);
}

}  // namespace aic::cli
