#include "cli/archive.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/codec_factory.hpp"
#include "core/partial_serializer.hpp"
#include "core/triangle.hpp"
#include "io/tensor_io.hpp"

namespace aic::cli {

using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr char kMagic[4] = {'A', 'I', 'C', 'Z'};
constexpr std::uint32_t kVersion = 2;

// The u8 codec-kind field of the header.
constexpr std::uint8_t kKindSquare = 0;
constexpr std::uint8_t kKindTriangle = 1;
constexpr std::uint8_t kKindPartial = 2;

template <typename T>
void append(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

template <typename T>
T read(const std::string& bytes, std::size_t& cursor) {
  if (cursor + sizeof(T) > bytes.size()) {
    throw std::runtime_error("archive: truncated");
  }
  T value;
  std::memcpy(&value, bytes.data() + cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

}  // namespace

std::string archive_codec_spec(const Archive& archive) {
  const auto& c = archive.config;
  std::ostringstream spec;
  if (archive.subdivision > 1) {
    spec << "partial:cf=" << c.cf << ",block=" << c.block
         << ",s=" << archive.subdivision;
  } else if (archive.triangle) {
    spec << "triangle:cf=" << c.cf << ",block=" << c.block;
  } else {
    spec << "dctchop:cf=" << c.cf << ",block=" << c.block;
  }
  spec << ",transform=" << core::transform_name(c.transform);
  if (c.height != 0) spec << ",h=" << c.height << ",w=" << c.width;
  return spec.str();
}

core::CodecPtr make_archive_codec(const Archive& archive) {
  return core::make_codec(archive_codec_spec(archive));
}

Archive compress_to_archive(const Tensor& input, const std::string& codec_spec,
                            core::CodecPtr* codec_out) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("archive: input must be BCHW");
  }
  const core::CodecPtr codec = core::make_codec(codec_spec);

  Archive archive;
  archive.original_shape = input.shape();
  // The archive header only represents the chop family; recover the
  // parameters from the concrete codec the factory built.
  if (const auto* dc =
          dynamic_cast<const core::DctChopCodec*>(codec.get())) {
    archive.config = dc->config();
  } else if (const auto* sg =
                 dynamic_cast<const core::TriangleCodec*>(codec.get())) {
    archive.triangle = true;
    archive.config = sg->config();
  } else if (const auto* ps =
                 dynamic_cast<const core::PartialSerialCodec*>(codec.get())) {
    archive.subdivision = ps->config().subdivision;
    archive.config = {.height = ps->config().height,
                      .width = ps->config().width,
                      .cf = ps->config().cf,
                      .block = ps->config().block,
                      .transform = ps->config().transform};
  } else {
    throw std::invalid_argument("archive: codec \"" + codec_spec +
                                "\" has no archive representation (use the "
                                "dctchop / triangle / partial family)");
  }
  archive.packed = codec->compress(input);
  // Shape-agnostic specs leave height/width zero; the header pins them
  // to the tensor that was actually compressed.
  archive.config.height = input.shape()[2];
  archive.config.width = input.shape()[3];
  if (codec_out != nullptr) *codec_out = codec;
  return archive;
}

Archive compress_to_archive(const Tensor& input, std::size_t cf,
                            std::size_t block,
                            core::TransformKind transform, bool triangle,
                            core::CodecPtr* codec_out) {
  std::ostringstream spec;
  spec << (triangle ? "triangle" : "dctchop") << ":cf=" << cf
       << ",block=" << block
       << ",transform=" << core::transform_name(transform);
  return compress_to_archive(input, spec.str(), codec_out);
}

std::string serialize_archive(const Archive& archive) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  append<std::uint32_t>(out, kVersion);
  const std::uint8_t kind = archive.subdivision > 1 ? kKindPartial
                            : archive.triangle     ? kKindTriangle
                                                   : kKindSquare;
  append<std::uint8_t>(out, kind);
  append<std::uint8_t>(out,
                       static_cast<std::uint8_t>(archive.config.transform));
  append<std::uint16_t>(out, static_cast<std::uint16_t>(archive.config.cf));
  append<std::uint16_t>(out,
                        static_cast<std::uint16_t>(archive.config.block));
  append<std::uint16_t>(out,
                        static_cast<std::uint16_t>(archive.subdivision));
  append<std::uint32_t>(
      out, static_cast<std::uint32_t>(archive.original_shape.rank()));
  for (std::size_t axis = 0; axis < archive.original_shape.rank(); ++axis) {
    append<std::uint64_t>(out, archive.original_shape[axis]);
  }
  out += io::serialize_tensor(archive.packed);
  return out;
}

Archive deserialize_archive(const std::string& bytes) {
  std::size_t cursor = 0;
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("archive: bad magic");
  }
  cursor += sizeof(kMagic);
  if (read<std::uint32_t>(bytes, cursor) != kVersion) {
    throw std::runtime_error("archive: unsupported version");
  }
  Archive archive;
  const std::uint8_t kind = read<std::uint8_t>(bytes, cursor);
  if (kind > kKindPartial) throw std::runtime_error("archive: unknown codec");
  archive.triangle = kind == kKindTriangle;
  archive.config.transform =
      static_cast<core::TransformKind>(read<std::uint8_t>(bytes, cursor));
  archive.config.cf = read<std::uint16_t>(bytes, cursor);
  archive.config.block = read<std::uint16_t>(bytes, cursor);
  archive.subdivision = read<std::uint16_t>(bytes, cursor);
  if (archive.subdivision == 0 ||
      (kind == kKindPartial) != (archive.subdivision > 1)) {
    throw std::runtime_error("archive: inconsistent subdivision");
  }
  const std::uint32_t rank = read<std::uint32_t>(bytes, cursor);
  if (rank != 4) throw std::runtime_error("archive: original must be BCHW");
  std::size_t dims[4];
  for (auto& d : dims) {
    d = static_cast<std::size_t>(read<std::uint64_t>(bytes, cursor));
  }
  archive.original_shape = Shape::bchw(dims[0], dims[1], dims[2], dims[3]);
  archive.config.height = dims[2];
  archive.config.width = dims[3];
  archive.packed = io::deserialize_tensor(bytes.substr(cursor));
  // Sanity: the packed payload matches what the codec expects.
  if (archive.packed.shape() !=
      make_archive_codec(archive)->compressed_shape(archive.original_shape)) {
    throw std::runtime_error("archive: payload/header mismatch");
  }
  return archive;
}

void save_archive(const Archive& archive, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("archive: cannot open " + path);
  const std::string bytes = serialize_archive(archive);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("archive: write failed: " + path);
}

Archive load_archive(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("archive: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  return deserialize_archive(bytes);
}

}  // namespace aic::cli
