#pragma once

#include <string>
#include <utility>
#include <vector>

#include "io/fault_inject.hpp"

namespace aic::cli {

/// One hardened decode path under test: a valid seed stream, the decode
/// callback (returns canonical bytes for bitwise comparison), and the
/// mutation matrix to run over it.
struct RobustnessTarget {
  std::string name;
  /// Which fuzz corpus family the seed belongs to ("archive", "huffman",
  /// "rle", "bitstream").
  std::string corpus_family;
  std::string bytes;
  io::DecodeFn decode;
  io::FaultMatrixOptions options;
};

/// Frame decoders shared between the fault-injection matrix and the
/// libFuzzer entry points. Input is fully untrusted; each either decodes
/// or raises aic::io::CorruptStream.
///
/// decode_archive_bytes: deserialize_archive + codec rebuild + full
/// decompress, returning the restored tensor's serialized bytes.
std::string decode_archive_bytes(const std::string& bytes);
/// Body layout: u32 table_count | (u16 symbol, u8 length)*count
/// | u32 symbol_count | bit payload. Rebuilds the (untrusted) canonical
/// table and decodes symbol_count symbols.
std::string decode_huffman_body(const std::string& bytes);
/// Body layout: u32 symbol_count | (u16 zero_run, i32 value)*count
/// | u32 length. Runs rle_decode.
std::string decode_rle_body(const std::string& bytes);
/// Body layout: u64 bit_count | bit payload. Reads bit_count bits.
std::string decode_bitstream_body(const std::string& bytes);

/// Wraps a body in the sealed integrity frame (u32 crc32c | body) the
/// matrix targets decode, mirroring the archive v3 contract for the raw
/// codec streams that have no container of their own.
std::string seal_frame(const std::string& body);

/// The full built-in decode-hardening suite: dctchop/partial/triangle
/// archives (v3 strict, v2 legacy-tolerant) plus the Huffman/RLE/
/// bitstream codecs behind sealed frames, each with header-bit sweeps,
/// truncation at every byte boundary, seeded random flips, and
/// deep-validation field sweeps (corrupted fields with fixed-up CRCs).
std::vector<RobustnessTarget> robustness_targets();

/// Runs the matrix over every target.
std::vector<std::pair<std::string, io::FaultReport>> run_robustness_suite();

/// Writes each target's valid seed stream (and for the non-archive
/// families, the unsealed body) under `dir`/<family>/ as fuzz corpus
/// seeds. Returns the files written.
std::vector<std::string> write_fuzz_corpus(const std::string& dir);

}  // namespace aic::cli
