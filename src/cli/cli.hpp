#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace aic::cli {

/// The aicomp command-line front end (testable entry point; the `aicomp`
/// binary forwards argv here).
///
///   aicomp gen <out.aict> [--batch B --channels C --res N --seed S]
///   aicomp compress <in.aict> <out.aicz> [--cf N --block B
///           --transform dct|wht|dst2 --triangle]
///   aicomp decompress <in.aicz> <out.aict>
///   aicomp info <file.aict|file.aicz>
///   aicomp eval <in.aict> [--cf N ...]      # round-trip rate/distortion
///
/// Returns a process exit code; all output goes to the given streams.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace aic::cli
