#include "cli/robustness_suite.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "baseline/bitstream.hpp"
#include "baseline/huffman.hpp"
#include "baseline/rle.hpp"
#include "cli/archive.hpp"
#include "data/synth.hpp"
#include "io/byte_reader.hpp"
#include "io/checksum.hpp"
#include "io/error.hpp"
#include "io/tensor_io.hpp"
#include "runtime/rng.hpp"

namespace aic::cli {

using io::CorruptKind;
using io::raise_corrupt;
using tensor::Shape;
using tensor::Tensor;

namespace {

template <typename T>
void append(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

/// Largest block length / symbol count a harness frame will honour —
/// rejects adversarial counts before they turn into allocations.
constexpr std::size_t kMaxFrameCount = std::size_t{1} << 20;

// ---------------------------------------------------------------------------
// Seed construction

Tensor seed_tensor(std::uint64_t seed) {
  runtime::Rng rng(seed);
  Tensor tensor(Shape::bchw(1, 1, 16, 16));
  Tensor plane = data::smooth_field(16, 16, rng, 4, 0.5);
  data::add_gaussian_noise(plane, rng, 0.02);
  tensor.set_plane(0, 0, plane);
  return tensor;
}

std::string archive_bytes(const std::string& spec, std::uint32_t version,
                          std::uint64_t seed) {
  return serialize_archive(compress_to_archive(seed_tensor(seed), spec),
                           version);
}

std::string archive_bytes_v4(const std::string& spec, std::uint64_t seed,
                             std::size_t chunk_bytes,
                             baseline::ChunkEntropy entropy) {
  const ArchiveWriteOptions options{
      .version = 4, .chunk_bytes = chunk_bytes, .entropy = entropy};
  return serialize_archive(compress_to_archive(seed_tensor(seed), spec),
                           options);
}

std::string huffman_body() {
  // Skewed-but-valid histogram over a small alphabet.
  std::vector<std::uint16_t> symbols;
  for (std::uint16_t s = 0; s < 8; ++s) {
    for (std::uint16_t rep = 0; rep < static_cast<std::uint16_t>(1 << s);
         ++rep) {
      symbols.push_back(s);
    }
  }
  const baseline::HuffmanCoder coder(symbols);
  baseline::BitWriter writer;
  coder.encode(symbols, writer);
  const std::vector<std::uint8_t> bits = writer.finish();

  std::string body;
  append<std::uint32_t>(body,
                        static_cast<std::uint32_t>(coder.lengths().size()));
  for (const auto& [symbol, length] : coder.lengths()) {
    append<std::uint16_t>(body, symbol);
    append<std::uint8_t>(body, length);
  }
  append<std::uint32_t>(body, static_cast<std::uint32_t>(symbols.size()));
  body.append(reinterpret_cast<const char*>(bits.data()), bits.size());
  return body;
}

std::string rle_body() {
  // Long zero runs around sparse values, plus an end-of-block tail.
  std::vector<std::int32_t> values(64, 0);
  values[0] = 13;
  values[9] = -7;
  values[40] = 1;
  const std::vector<baseline::RleSymbol> symbols =
      baseline::rle_encode(values);

  std::string body;
  append<std::uint32_t>(body, static_cast<std::uint32_t>(symbols.size()));
  for (const baseline::RleSymbol& s : symbols) {
    append<std::uint16_t>(body, s.zero_run);
    append<std::int32_t>(body, s.value);
  }
  append<std::uint32_t>(body, static_cast<std::uint32_t>(values.size()));
  return body;
}

std::string bitstream_body() {
  baseline::BitWriter writer;
  for (std::uint32_t i = 0; i < 100; ++i) {
    writer.write_bits(i * 2654435761u, 1 + i % 32);
  }
  std::string body;
  append<std::uint64_t>(body, writer.bit_count());
  const std::vector<std::uint8_t> bits = writer.finish();
  body.append(reinterpret_cast<const char*>(bits.data()), bits.size());
  return body;
}

// ---------------------------------------------------------------------------
// Field-sweep mutants

/// Stream layout offsets (see cli/archive.hpp). The preamble is
/// magic|version|header_len|header_crc for both CRC'd versions; v3
/// additionally carries a payload CRC word before the header, v4 does
/// not (its chunk CRCs live in the header's table).
constexpr std::size_t kVersionOffset = 4;
constexpr std::size_t kHeaderCrcOffset = 12;
constexpr std::size_t kHeaderOffset = 20;    // v3
constexpr std::size_t kHeaderOffsetV4 = 16;  // v4

std::size_t header_offset_for(std::uint32_t version) {
  return version >= 4 ? kHeaderOffsetV4 : kHeaderOffset;
}

/// Patches `width` bytes of the header region at `field_offset` and
/// recomputes the header CRC, so the mutant exercises the deep field
/// validation instead of the checksum.
std::string patch_header_field(const std::string& bytes,
                               std::uint32_t version,
                               std::size_t field_offset, const void* value,
                               std::size_t width) {
  const std::size_t header_offset = header_offset_for(version);
  std::string out = bytes;
  std::memcpy(out.data() + header_offset + field_offset, value, width);
  std::uint32_t header_len;
  std::memcpy(&header_len, out.data() + 8, sizeof(header_len));
  const std::uint32_t crc =
      io::crc32c(out.data() + header_offset, header_len);
  std::memcpy(out.data() + kHeaderCrcOffset, &crc, sizeof(crc));
  return out;
}

/// Deep-validation sweeps over every header field shared by v3/v4 (CRC
/// fixed up each time) plus a version sweep (the version word sits
/// outside the CRCs).
std::vector<std::pair<std::string, std::string>> archive_field_sweeps(
    const std::string& bytes, std::uint32_t version) {
  std::vector<std::pair<std::string, std::string>> out;
  const auto add = [&](const std::string& label, std::size_t offset,
                       auto value) {
    out.emplace_back("field sweep " + label,
                     patch_header_field(bytes, version, offset, &value,
                                        sizeof(value)));
  };
  for (std::uint8_t kind : {std::uint8_t{3}, std::uint8_t{255}}) {
    add("kind=" + std::to_string(kind), 0, kind);
  }
  for (std::uint8_t transform : {std::uint8_t{3}, std::uint8_t{200}}) {
    add("transform=" + std::to_string(transform), 1, transform);
  }
  for (std::uint16_t cf : {std::uint16_t{0}, std::uint16_t{9},
                           std::uint16_t{65535}}) {
    add("cf=" + std::to_string(cf), 2, cf);
  }
  for (std::uint16_t block : {std::uint16_t{0}, std::uint16_t{3},
                              std::uint16_t{65535}}) {
    add("block=" + std::to_string(block), 4, block);
  }
  for (std::uint16_t s : {std::uint16_t{0}, std::uint16_t{2},
                          std::uint16_t{7}, std::uint16_t{65535}}) {
    add("subdivision=" + std::to_string(s), 6, s);
  }
  for (std::uint32_t rank : {std::uint32_t{0}, std::uint32_t{3},
                             std::uint32_t{5}, std::uint32_t{0xFFFFFFFF}}) {
    add("rank=" + std::to_string(rank), 8, rank);
  }
  for (std::uint64_t dim :
       {std::uint64_t{0}, std::uint64_t{15}, std::uint64_t{1} << 31,
        std::uint64_t{1} << 33, std::uint64_t{1} << 62,
        ~std::uint64_t{0}}) {
    // Sweep each of the four dims independently.
    for (std::size_t axis = 0; axis < 4; ++axis) {
      add("dim[" + std::to_string(axis) + "]=" + std::to_string(dim),
          12 + 8 * axis, dim);
    }
  }
  // The version word is outside both CRCs; sweep it raw. Unknown
  // versions are rejected by range; reinterpreting a v3 stream as v4 (or
  // vice versa) shifts the header window, which the header CRC catches.
  for (std::uint32_t v : {std::uint32_t{0}, std::uint32_t{1},
                          std::uint32_t{5}, std::uint32_t{255},
                          std::uint32_t{0xFFFFFFFF},
                          version == 4 ? std::uint32_t{3}
                                       : std::uint32_t{4}}) {
    std::string mutant = bytes;
    std::memcpy(mutant.data() + kVersionOffset, &v, sizeof(v));
    out.emplace_back("version sweep " + std::to_string(v), mutant);
  }
  return out;
}

/// v4-only deep mutants: chunk-geometry and chunk-table corruption with
/// the header CRC recomputed, so the structural checks (not the
/// checksum) must reject, plus per-chunk CRC and encoded-region flips
/// that the chunk CRCs must catch.
std::vector<std::pair<std::string, std::string>> v4_table_mutants(
    const std::string& bytes) {
  // Header layout after the 44 shared bytes: u64 payload_len @44,
  // u64 chunk_bytes @52, u32 chunk_count @60, then 12-byte table rows.
  constexpr std::size_t kPayloadLenOff = 44;
  constexpr std::size_t kChunkBytesOff = 52;
  constexpr std::size_t kChunkCountOff = 60;
  constexpr std::size_t kTableOff = 64;

  std::uint64_t payload_len, chunk_bytes;
  std::uint32_t chunk_count;
  std::memcpy(&payload_len, bytes.data() + kHeaderOffsetV4 + kPayloadLenOff,
              8);
  std::memcpy(&chunk_bytes, bytes.data() + kHeaderOffsetV4 + kChunkBytesOff,
              8);
  std::memcpy(&chunk_count, bytes.data() + kHeaderOffsetV4 + kChunkCountOff,
              4);

  std::vector<std::pair<std::string, std::string>> out;
  const auto add = [&](const std::string& label, std::size_t offset,
                       auto value) {
    out.emplace_back("v4 table " + label,
                     patch_header_field(bytes, 4, offset, &value,
                                        sizeof(value)));
  };
  add("payload_len+1", kPayloadLenOff, payload_len + 1);
  add("payload_len=0", kPayloadLenOff, std::uint64_t{0});
  add("chunk_bytes=0", kChunkBytesOff, std::uint64_t{0});
  add("chunk_bytes=1<<40", kChunkBytesOff, std::uint64_t{1} << 40);
  add("chunk_bytes*2", kChunkBytesOff, chunk_bytes * 2);
  add("chunk_count+1", kChunkCountOff, chunk_count + 1);
  add("chunk_count-1", kChunkCountOff, chunk_count - 1);
  add("chunk_count=0", kChunkCountOff, std::uint32_t{0});
  // Per-chunk table rows: length lies (structural / truncation checks)
  // and a CRC lie (the re-encoded chunk no longer matches its stored
  // checksum).
  add("chunk0 len=0", kTableOff, std::uint64_t{0});
  add("chunk0 len+=1", kTableOff, [&] {
        std::uint64_t len;
        std::memcpy(&len, bytes.data() + kHeaderOffsetV4 + kTableOff, 8);
        return len + 1;
      }());
  add("chunk0 len=1<<30", kTableOff, std::uint64_t{1} << 30);
  add("chunk0 crc^=1", kTableOff + 8, [&] {
        std::uint32_t crc;
        std::memcpy(&crc, bytes.data() + kHeaderOffsetV4 + kTableOff + 8, 4);
        return crc ^ 1u;
      }());
  // A flip inside the encoded chunk region (outside the header CRC's
  // span): only the per-chunk CRC stands between it and a wrong tensor.
  {
    std::string mutant = bytes;
    mutant[mutant.size() - 1] ^= 0x10;
    out.emplace_back("v4 encoded-region flip (last byte)",
                     std::move(mutant));
    std::string first = bytes;
    std::uint32_t header_len;
    std::memcpy(&header_len, first.data() + 8, sizeof(header_len));
    first[kHeaderOffsetV4 + header_len] ^= 0x01;  // first encoded byte
    out.emplace_back("v4 encoded-region flip (first byte)",
                     std::move(first));
  }
  return out;
}

/// Huffman deep mutants: structurally parseable bodies whose table or
/// counts violate the coder's contracts (sealed, so the frame CRC
/// passes and the HuffmanCoder validation is what rejects them).
std::vector<std::pair<std::string, std::string>> huffman_deep_mutants() {
  std::vector<std::pair<std::string, std::string>> out;
  const auto table_body = [](std::vector<std::pair<std::uint16_t,
                                                   std::uint8_t>> entries,
                             std::uint32_t count, std::string payload) {
    std::string body;
    append<std::uint32_t>(body, static_cast<std::uint32_t>(entries.size()));
    for (const auto& [symbol, length] : entries) {
      append<std::uint16_t>(body, symbol);
      append<std::uint8_t>(body, length);
    }
    append<std::uint32_t>(body, count);
    body += payload;
    return body;
  };
  out.emplace_back("zero-length code",
                   seal_frame(table_body({{1, 0}, {2, 2}}, 1, "\xAA")));
  out.emplace_back("over-long code (40 bits)",
                   seal_frame(table_body({{1, 40}, {2, 1}}, 1, "\xAA")));
  out.emplace_back(
      "Kraft violation",
      seal_frame(table_body({{1, 1}, {2, 1}, {3, 2}}, 1, "\xAA")));
  out.emplace_back("empty table", seal_frame(table_body({}, 1, "\xAA")));
  out.emplace_back(
      "count beyond bits",
      seal_frame(table_body({{1, 1}, {2, 1}}, 1000000, "\xAA")));
  return out;
}

/// RLE deep mutants: runs that overflow the block and hostile lengths.
std::vector<std::pair<std::string, std::string>> rle_deep_mutants() {
  std::vector<std::pair<std::string, std::string>> out;
  const auto body = [](std::vector<baseline::RleSymbol> symbols,
                       std::uint32_t length) {
    std::string b;
    append<std::uint32_t>(b, static_cast<std::uint32_t>(symbols.size()));
    for (const baseline::RleSymbol& s : symbols) {
      append<std::uint16_t>(b, s.zero_run);
      append<std::int32_t>(b, s.value);
    }
    append<std::uint32_t>(b, length);
    return b;
  };
  out.emplace_back("run overflows block",
                   seal_frame(body({{60000, 5}, {60000, 5}}, 64)));
  out.emplace_back("value past block end",
                   seal_frame(body({{63, 5}, {0, 9}}, 64)));
  out.emplace_back("hostile length",
                   seal_frame(body({{0, 1}}, 0xFFFFFFFF)));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Frame decoders

std::string decode_archive_bytes(const std::string& bytes) {
  const Archive archive = deserialize_archive(bytes);
  const Tensor restored = make_archive_codec(archive)->decompress(
      archive.packed, archive.original_shape);
  return io::serialize_tensor(restored);
}

std::string decode_huffman_body(const std::string& bytes) {
  io::ByteReader reader(bytes, "huffman frame");
  const auto table_count = reader.read<std::uint32_t>("table count");
  if (table_count == 0 || table_count > kMaxFrameCount) {
    raise_corrupt(CorruptKind::kBadCodeTable,
                  "huffman frame: implausible table count " +
                      std::to_string(table_count));
  }
  std::map<std::uint16_t, std::uint8_t> lengths;
  for (std::uint32_t i = 0; i < table_count; ++i) {
    const auto symbol = reader.read<std::uint16_t>("table symbol");
    const auto length = reader.read<std::uint8_t>("table length");
    if (!lengths.emplace(symbol, length).second) {
      raise_corrupt(CorruptKind::kBadCodeTable,
                    "huffman frame: duplicate symbol " +
                        std::to_string(symbol));
    }
  }
  const baseline::HuffmanCoder coder(lengths);
  const auto symbol_count = reader.read<std::uint32_t>("symbol count");
  const std::string_view payload = reader.rest();
  std::vector<std::uint8_t> payload_bytes(payload.begin(), payload.end());
  baseline::BitReader bits(payload_bytes);
  const std::vector<std::uint16_t> symbols = coder.decode(bits, symbol_count);
  return std::string(reinterpret_cast<const char*>(symbols.data()),
                     symbols.size() * sizeof(std::uint16_t));
}

std::string decode_rle_body(const std::string& bytes) {
  io::ByteReader reader(bytes, "rle frame");
  const auto symbol_count = reader.read<std::uint32_t>("symbol count");
  if (symbol_count > kMaxFrameCount) {
    raise_corrupt(CorruptKind::kBadSymbol,
                  "rle frame: implausible symbol count " +
                      std::to_string(symbol_count));
  }
  std::vector<baseline::RleSymbol> symbols;
  symbols.reserve(symbol_count);
  for (std::uint32_t i = 0; i < symbol_count; ++i) {
    baseline::RleSymbol s;
    s.zero_run = reader.read<std::uint16_t>("zero run");
    s.value = reader.read<std::int32_t>("value");
    symbols.push_back(s);
  }
  const auto length = reader.read<std::uint32_t>("block length");
  if (length > kMaxFrameCount) {
    raise_corrupt(CorruptKind::kBadSymbol,
                  "rle frame: implausible block length " +
                      std::to_string(length));
  }
  const std::vector<std::int32_t> values =
      baseline::rle_decode(symbols, length);
  return std::string(reinterpret_cast<const char*>(values.data()),
                     values.size() * sizeof(std::int32_t));
}

std::string decode_bitstream_body(const std::string& bytes) {
  io::ByteReader reader(bytes, "bitstream frame");
  const auto bit_count = reader.read<std::uint64_t>("bit count");
  const std::string_view payload = reader.rest();
  std::vector<std::uint8_t> payload_bytes(payload.begin(), payload.end());
  baseline::BitReader bits(payload_bytes);
  if (bit_count > bits.bits_remaining()) {
    raise_corrupt(CorruptKind::kTruncated,
                  "bitstream frame: " + std::to_string(bit_count) +
                      " bits promised, " +
                      std::to_string(bits.bits_remaining()) + " available");
  }
  std::string out;
  std::uint64_t remaining = bit_count;
  while (remaining > 0) {
    const std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, 32));
    append<std::uint32_t>(out, bits.read_bits(take));
    remaining -= take;
  }
  return out;
}

std::string seal_frame(const std::string& body) {
  std::string out;
  append<std::uint32_t>(out, io::crc32c(body.data(), body.size()));
  out += body;
  return out;
}

namespace {

/// Decodes a sealed frame: CRC first (typed rejection of any flip), then
/// the body decoder.
io::DecodeFn sealed(std::string (*decode_body)(const std::string&)) {
  return [decode_body](const std::string& bytes) {
    io::ByteReader reader(bytes, "sealed frame");
    const auto stored = reader.read<std::uint32_t>("frame CRC");
    const std::string_view body = reader.rest();
    const std::uint32_t computed = io::crc32c(body.data(), body.size());
    if (computed != stored) {
      raise_corrupt(CorruptKind::kChecksumMismatch,
                    "sealed frame: CRC mismatch (stored " +
                        std::to_string(stored) + ", computed " +
                        std::to_string(computed) + ")");
    }
    return decode_body(std::string(body));
  };
}

}  // namespace

std::vector<RobustnessTarget> robustness_targets() {
  std::vector<RobustnessTarget> targets;

  const auto archive_target = [&](const std::string& name,
                                  const std::string& spec,
                                  std::uint32_t version, std::uint64_t seed) {
    RobustnessTarget t;
    t.name = name;
    t.corpus_family = "archive";
    t.bytes = archive_bytes(spec, version, seed);
    t.decode = decode_archive_bytes;
    // Sweep the whole fixed-size preamble + header fields bit by bit.
    t.options.header_bytes =
        version >= 3 ? header_offset_for(version) + 44 : 8 + 44;
    t.options.random_flips = 96;
    t.options.seed = seed;
    // v2 has no checksum: a payload flip silently shifts float values,
    // which the legacy format cannot detect.
    t.options.allow_divergence = version < 3;
    if (version >= 3) t.options.extra = archive_field_sweeps(t.bytes, version);
    targets.push_back(std::move(t));
  };
  archive_target("archive:dctchop:v3", "dctchop:cf=4,block=8", 3, 11);
  archive_target("archive:partial:v3", "partial:cf=4,block=8,s=2", 3, 12);
  archive_target("archive:triangle:v3", "triangle:cf=4,block=8", 3, 13);
  archive_target("archive:dctchop:v2", "dctchop:cf=4,block=8", 2, 14);

  // v4 chunked targets: small chunk budgets force multi-chunk tables;
  // one target per entropy family so every chunk decoder faces the
  // matrix. Bit sweeps additionally cover the whole chunk table (it
  // lives inside the CRC'd header).
  const auto archive_v4_target = [&](const std::string& name,
                                     const std::string& spec,
                                     std::uint64_t seed,
                                     std::size_t chunk_bytes,
                                     baseline::ChunkEntropy entropy) {
    RobustnessTarget t;
    t.name = name;
    t.corpus_family = "archive";
    t.bytes = archive_bytes_v4(spec, seed, chunk_bytes, entropy);
    t.decode = decode_archive_bytes;
    std::uint32_t header_len;
    std::memcpy(&header_len, t.bytes.data() + 8, sizeof(header_len));
    t.options.header_bytes = kHeaderOffsetV4 + header_len;
    t.options.random_flips = 96;
    t.options.seed = seed;
    t.options.extra = archive_field_sweeps(t.bytes, 4);
    const auto table = v4_table_mutants(t.bytes);
    t.options.extra.insert(t.options.extra.end(), table.begin(), table.end());
    targets.push_back(std::move(t));
  };
  archive_v4_target("archive:dctchop:v4:raw", "dctchop:cf=4,block=8", 15, 96,
                    baseline::ChunkEntropy::kRaw);
  archive_v4_target("archive:partial:v4:auto", "partial:cf=4,block=8,s=2", 16,
                    128, baseline::ChunkEntropy::kAuto);
  archive_v4_target("archive:triangle:v4:huffman", "triangle:cf=4,block=8",
                    17, 80, baseline::ChunkEntropy::kHuffman);
  archive_v4_target("archive:dctchop:v4:packed", "dctchop:cf=4,block=8", 18,
                    64, baseline::ChunkEntropy::kPacked);

  const auto frame_target =
      [&](const std::string& name, const std::string& family,
          std::string body, std::string (*decode_body)(const std::string&),
          std::vector<std::pair<std::string, std::string>> deep) {
        RobustnessTarget t;
        t.name = name;
        t.corpus_family = family;
        t.bytes = seal_frame(body);
        t.decode = sealed(decode_body);
        t.options.header_bytes = t.bytes.size();  // sweep every bit
        t.options.random_flips = 32;
        t.options.seed = 42;
        t.options.extra = std::move(deep);
        targets.push_back(std::move(t));
      };
  frame_target("huffman:sealed", "huffman", huffman_body(),
               decode_huffman_body, huffman_deep_mutants());
  frame_target("rle:sealed", "rle", rle_body(), decode_rle_body,
               rle_deep_mutants());
  frame_target("bitstream:sealed", "bitstream", bitstream_body(),
               decode_bitstream_body, {});

  return targets;
}

std::vector<std::pair<std::string, io::FaultReport>> run_robustness_suite() {
  std::vector<std::pair<std::string, io::FaultReport>> out;
  for (const RobustnessTarget& target : robustness_targets()) {
    out.emplace_back(target.name,
                     io::run_fault_matrix(target.bytes, target.decode,
                                          target.options));
  }
  return out;
}

std::vector<std::string> write_fuzz_corpus(const std::string& dir) {
  std::vector<std::string> written;
  const auto write = [&](const std::string& family, const std::string& name,
                         const std::string& bytes) {
    const std::filesystem::path path =
        std::filesystem::path(dir) / family / name;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream file(path, std::ios::binary);
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    written.push_back(path.string());
  };
  for (const RobustnessTarget& target : robustness_targets()) {
    // Only the archive fuzz target consumes full container streams; the
    // codec fuzz targets consume unsealed bodies (a CRC prefix would
    // block the fuzzer at the checksum).
    if (target.corpus_family != "archive") continue;
    std::string name = target.name;
    for (char& c : name) {
      if (c == ':') c = '_';
    }
    write(target.corpus_family, "seed_" + name + ".bin", target.bytes);
  }
  write("huffman", "seed_body.bin", huffman_body());
  write("rle", "seed_body.bin", rle_body());
  write("bitstream", "seed_body.bin", bitstream_body());
  return written;
}

}  // namespace aic::cli
