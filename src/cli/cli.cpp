#include "cli/cli.hpp"

#include <fstream>
#include <iomanip>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <atomic>
#include <chrono>
#include <csignal>

#include "accel/drift.hpp"
#include "baseline/comparators.hpp"
#include "cli/archive.hpp"
#include "core/codec_factory.hpp"
#include "core/dct_chop.hpp"
#include "core/fidelity.hpp"
#include "data/synth.hpp"
#include "io/mapped_file.hpp"
#include "io/tensor_io.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/context.hpp"
#include "runtime/cpu_features.hpp"
#include "runtime/env.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm_kernels.hpp"
#include "tensor/ops.hpp"

namespace aic::cli {

namespace {

using tensor::Shape;
using tensor::Tensor;

struct Options {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
  bool triangle = false;
  bool stats = false;
  bool metrics = false;
  std::string trace_path;
  std::string metrics_out;
};

Options parse(const std::vector<std::string>& args, std::size_t start) {
  Options options;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--triangle") {
      options.triangle = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--trace") {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("missing output path for --trace");
      }
      options.trace_path = args[++i];
    } else if (arg == "--metrics-out") {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("missing output path for --metrics-out");
      }
      options.metrics_out = args[++i];
    } else if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("missing value for " + arg);
      }
      options.flags[arg.substr(2)] = args[++i];
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

std::size_t flag_size(const Options& options, const std::string& name,
                      std::size_t fallback) {
  const auto it = options.flags.find(name);
  if (it == options.flags.end()) return fallback;
  // stoull throws bare std::invalid_argument / std::out_of_range on junk
  // or huge values (and silently wraps negatives); re-raise with a
  // diagnostic that names the offending flag.
  try {
    std::size_t pos = 0;
    const unsigned long long value = std::stoull(it->second, &pos);
    if (pos != it->second.size() || it->second.front() == '-') {
      throw std::exception();
    }
    return static_cast<std::size_t>(value);
  } catch (...) {
    throw std::invalid_argument("flag --" + name +
                                " expects a non-negative integer, got \"" +
                                it->second + "\"");
  }
}

std::string flag_string(const Options& options, const std::string& name,
                        const std::string& fallback) {
  const auto it = options.flags.find(name);
  return it == options.flags.end() ? fallback : it->second;
}

/// The codec spec for a command: --codec verbatim when given, else
/// synthesized from the classic --cf/--block/--transform/--triangle
/// flags. Either way the codec is built by core::CodecFactory.
std::string codec_spec(const Options& options) {
  const auto it = options.flags.find("codec");
  if (it != options.flags.end()) return it->second;
  std::ostringstream spec;
  spec << (options.triangle ? "triangle" : "dctchop")
       << ":cf=" << flag_size(options, "cf", 4)
       << ",block=" << flag_size(options, "block", 8)
       << ",transform=" << flag_string(options, "transform", "dct");
  return spec.str();
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  aicomp gen <out.aict> [--batch B --channels C --res N --seed S]\n"
         "  aicomp compress <in.aict> <out.aicz> [--codec <spec> | --cf N "
         "--block B --transform dct|wht|dst2 --triangle]\n"
         "                  [--chunk-bytes N --entropy "
         "raw|packed|huffman|auto --archive-version 2|3|4] [--stats]\n"
         "  aicomp decompress <in.aicz> <out.aict> [--stats]\n"
         "  aicomp verify <in.aicz>   (check CRCs + full decode)\n"
         "  aicomp info <file>\n"
         "  aicomp eval <in.aict> [--codec <spec> | --cf N --block B "
         "--transform ... --triangle] [--stats]\n"
         "  aicomp codecs      (list registered codec specs)\n"
         "  aicomp serve [in.aicz] [--obs-port P --duration-ms D "
         "--interval-ms I --sessions N]\n"
         "  aicomp --metrics   (standalone: probe workload + report)\n"
         "\n"
         "  serve runs a continuous workload (decode of in.aicz, or the\n"
         "  synthetic probe) with the telemetry endpoint up: GET /metrics\n"
         "  (OpenMetrics), /healthz, /tracez on --obs-port (default\n"
         "  AIC_OBS_PORT or 9464; 0 picks a free port). --duration-ms 0\n"
         "  serves until SIGINT/SIGTERM. --interval-ms sets the snapshot\n"
         "  exporter cadence (default AIC_METRICS_EXPORT_MS or 1000).\n"
         "  --sessions N runs N isolated compression sessions concurrently\n"
         "  over the shared worker pool; each gets its own plan cache and\n"
         "  session<i>.* metric scope, and every iteration asserts the\n"
         "  session's archive bytes are bitwise-identical to a reference\n"
         "  computed before any neighbor load existed (exit 1 on drift).\n"
         "  --metrics-out <path> writes the JSON metrics snapshot to a\n"
         "  file after any command (machine-readable --metrics).\n"
         "  --codec takes a CodecFactory spec: kind[:key=value,...], e.g.\n"
         "  dctchop:cf=4, partial:cf=4,s=2, triangle:cf=4, zfp:rate=8,\n"
         "  sz:eb=1e-3, jpeg:q=85. `aicomp codecs` lists every kind.\n"
         "  (compress accepts only the dctchop/triangle/partial family;\n"
         "  eval accepts any registered codec.)\n"
         "  --stats prints per-codec counters (calls, planes, Eq. 5/7\n"
         "  FLOPs, bytes, wall time) after the operation, plus chunked-\n"
         "  pipeline and thread-pool counters when a v4 archive moved.\n"
         "  --chunk-bytes sets the v4 chunk budget (default 65536);\n"
         "  --entropy picks the per-chunk coding (default raw; auto\n"
         "  chooses the smallest of raw/packed/huffman per chunk).\n"
         "  --threads N sizes the shared worker pool; precedence is the\n"
         "  flag, then AIC_THREADS, then AIC_NUM_THREADS (legacy alias),\n"
         "  then the hardware concurrency.\n"
         "  --metrics prints latency percentiles (p50/p90/p99) and the\n"
         "  per-simulator cost-model drift table after the operation.\n"
         "  --trace <out.json> records spans and writes Chrome trace-event\n"
         "  JSON (open in Perfetto / chrome://tracing). AIC_TRACE=<path>\n"
         "  does the same without flags.\n";
  return 2;
}

void print_op_stats(std::ostream& out, const char* label,
                    const core::CodecOpStats& op) {
  if (op.calls == 0) return;
  out << "  " << label << ": calls=" << op.calls << " planes=" << op.planes
      << " eq_flops=" << op.flops << " bytes " << op.bytes_in << " -> "
      << op.bytes_out << " in " << op.seconds << " s ("
      << op.gflops_per_second() << " GFLOP/s)\n";
}

void print_stats(std::ostream& out, const core::Codec& codec,
                 const Context& ctx) {
  const core::CodecStatsSnapshot snap = codec.stats().snapshot();
  out << "stats[" << codec.name() << "]:\n";
  print_op_stats(out, "compress", snap.compress);
  print_op_stats(out, "decompress", snap.decompress);
  const tensor::GemmCounters kc = tensor::gemm_counters();
  out << "kernels[" << runtime::kernel_backend_name()
      << "]: gemm_calls=" << kc.gemm_calls << " a_panels=" << kc.a_panels_packed
      << " b_panels=" << kc.b_panels_packed
      << " microkernel_calls=" << kc.microkernel_calls
      << " tail_tiles=" << kc.tail_tiles << " axpy_calls=" << kc.axpy_calls
      << " block_mac_calls=" << kc.block_mac_calls
      << " gemm_flops=" << kc.flops << "\n";
  // Chunked-archive pipeline counters (see obs/pipeline.hpp); only shown
  // once a v4 archive moved through this process.
  const obs::Registry& reg = obs::Registry::global();
  const auto counters = reg.counters();
  const auto gauges = reg.gauges();
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : counters) {
      if (key == name) return value;
    }
    return 0;
  };
  const auto gauge = [&](const std::string& name) -> double {
    for (const auto& [key, value] : gauges) {
      if (key == name) return value;
    }
    return 0.0;
  };
  if (counter("pipeline.chunks_encoded") != 0 ||
      counter("pipeline.chunks_decoded") != 0) {
    const runtime::ThreadPoolStats pool = ctx.pool().stats();
    const runtime::ParallelForStats pfor = runtime::parallel_for_stats();
    out << "pipeline: chunks_encoded=" << counter("pipeline.chunks_encoded")
        << " chunks_decoded=" << counter("pipeline.chunks_decoded")
        << " encode_reallocs=" << counter("pipeline.encode_reallocs")
        << " chunk_bytes=" << gauge("pipeline.last_chunk_bytes")
        << " chunks=" << gauge("pipeline.last_chunks")
        << " overlap_efficiency=" << gauge("pipeline.overlap_efficiency")
        << "\n";
    out << "pool[" << ctx.pool().size()
        << " threads]: tasks_executed=" << pool.tasks_executed
        << " tasks_inlined=" << pool.tasks_inlined
        << " peak_queue_depth=" << pool.peak_queue_depth
        << " pfor_parallel=" << pfor.parallel_runs
        << " pfor_inline=" << pfor.inline_runs
        << " pfor_last_tasks=" << pfor.last_tasks
        << " pfor_last_chunk=" << pfor.last_chunk << "\n";
  }
}

void print_metrics(std::ostream& out) {
  // Per-simulator drift table: one small compress graph through each
  // paper platform, predicted (cost model) vs. measured (host) time.
  out << "cost-model drift (predicted vs. host-measured):\n";
  out << "  " << std::left << std::setw(18) << "platform" << std::right
      << std::setw(14) << "predicted_s" << std::setw(14) << "measured_s"
      << std::setw(10) << "ratio" << "\n";
  for (const accel::DriftRow& row : accel::cost_model_drift_probe()) {
    out << "  " << std::left << std::setw(18) << row.platform << std::right;
    if (!row.compiled) {
      out << "  rejected: " << row.error << "\n";
      continue;
    }
    out << std::setw(14) << std::scientific << std::setprecision(3)
        << row.predicted_s << std::setw(14) << row.measured_s
        << std::setw(10) << std::fixed << std::setprecision(2)
        << row.drift_ratio() << "\n";
  }
  out.unsetf(std::ios::floatfield);

  const obs::Registry& reg = obs::Registry::global();
  out << "latency histograms (ns):\n";
  for (const auto& [name, snap] : reg.histograms()) {
    if (snap.count == 0) continue;
    out << "  " << std::left << std::setw(28) << name << std::right
        << " count=" << snap.count << " p50=" << std::setprecision(0)
        << std::fixed << snap.p50() << " p90=" << snap.p90()
        << " p99=" << snap.p99() << " max=" << snap.max << "\n";
  }
  out.unsetf(std::ios::floatfield);
  out << "counters:\n";
  for (const auto& [name, value] : reg.counters()) {
    out << "  " << std::left << std::setw(28) << name << " " << value << "\n";
  }
  out << "gauges:\n";
  for (const auto& [name, value] : reg.gauges()) {
    out << "  " << std::left << std::setw(28) << name << " " << value << "\n";
  }
}

/// Standalone `aicomp --metrics` / `aicomp --trace <f>`: run a small
/// representative codec workload so histograms and spans have data even
/// without an input file. The round trips are split across two explicit
/// threads (the codec is thread-safe) so traces show cross-thread
/// structure even on single-core hosts where the pool degrades inline.
int cmd_probe(std::ostream& out) {
  runtime::Rng rng(1);
  // One shape-agnostic factory codec over two distinct resolutions: the
  // first round trip per shape builds and caches a plan, every later one
  // is a pure cache hit — `--metrics` shows plan_cache.build_count == 2
  // (the 32x32 key is shared with the drift probe's graphs) against
  // plan_cache.hit >= 1.
  const Tensor large = Tensor::uniform(Shape::bchw(4, 3, 32, 32), rng);
  const Tensor small = Tensor::uniform(Shape::bchw(4, 3, 16, 16), rng);
  const core::CodecPtr codec = core::make_codec("dctchop:cf=4,block=8");
  const auto worker = [&] {
    for (int rep = 0; rep < 8; ++rep) {
      (void)codec->round_trip(large);
      (void)codec->round_trip(small);
    }
  };
  std::thread second(worker);
  worker();
  second.join();
  out << "probe: 32 round trips of " << codec->name() << " on "
      << large.shape().to_string() << " and " << small.shape().to_string()
      << " across 2 threads\n";
  return 0;
}

std::atomic<bool> g_serve_stop{false};

void serve_stop_handler(int) { g_serve_stop.store(true); }

/// `aicomp serve [in.aicz]`: keeps a workload running with the whole
/// telemetry stack up — interval snapshot exporter, OpenMetrics HTTP
/// endpoint, spans — so a Prometheus scrape (or curl) can watch
/// plan_cache.*, pipeline.*, and accel.* evolve on a live process.
/// `--sessions N` runs the workload in N isolated contexts over the one
/// shared pool: each session owns a plan cache and a session<i>.* metric
/// scope, and every iteration asserts its archive bytes stay
/// bitwise-identical to a reference computed before any neighbor load
/// existed.
int cmd_serve(const Options& options, std::ostream& out, const Context& ctx) {
  const std::size_t env_port = runtime::env_size_t("AIC_OBS_PORT", 9464);
  const std::size_t port = flag_size(options, "obs-port", env_port);
  const std::size_t duration_ms = flag_size(options, "duration-ms", 0);
  const std::size_t interval_ms = flag_size(
      options, "interval-ms", runtime::env_size_t("AIC_METRICS_EXPORT_MS", 1000));
  const std::size_t sessions = flag_size(options, "sessions", 1);
  if (sessions == 0 || sessions > 64) {
    throw std::invalid_argument("serve: --sessions must be in [1, 64]");
  }

  obs::Exporter::Options exporter_options;
  exporter_options.interval_ms = interval_ms;
  exporter_options.jsonl_path = runtime::env_string("AIC_METRICS_JSONL", "");
  obs::Exporter::global().start(exporter_options);

  obs::HttpServer& server = obs::HttpServer::global();
  if (!server.running()) {
    obs::HttpServer::Options server_options;
    server_options.port = static_cast<std::uint16_t>(port);
    if (!server.start(server_options)) {
      throw std::runtime_error("serve: cannot bind obs port " +
                               std::to_string(port));
    }
  }

  // Optional decode workload: a real archive is re-deserialized from its
  // mapped bytes every iteration (container CRCs, chunk-parallel entropy
  // decode, codec decompress) so the pipeline.* and io.* families keep
  // moving; without one the synthetic probe codec keeps plan_cache.*
  // alive. Spans are recorded so /tracez shows live structure. The file
  // stays mapped for the whole serve run — iterations decode straight
  // out of the mapping, never from a heap copy of the file.
  std::optional<io::MappedFile> archive_file;
  std::string_view archive_bytes;
  if (options.positional.size() > 1) {
    throw std::invalid_argument("serve: expected at most one archive path");
  }
  if (options.positional.size() == 1) {
    archive_file.emplace(options.positional[0]);
    archive_bytes = archive_file->view();
    // Validate up front so a corrupt archive fails loudly at startup
    // instead of raising once per iteration.
    (void)deserialize_archive(archive_bytes, ctx);
  }
  runtime::Rng rng(7);
  const Tensor probe_input = Tensor::uniform(Shape::bchw(2, 3, 32, 32), rng);
  const char* const kProbeSpec = "dctchop:cf=4,block=8";
  const ArchiveWriteOptions write_options =
      ArchiveWriteOptions::from_context(ctx);
  // The parity reference every session must reproduce, computed before
  // any concurrent neighbor load exists.
  const std::string reference_bytes = compress_to_archive_bytes(
      probe_input, kProbeSpec, write_options, nullptr, ctx);
  obs::set_tracing_enabled(true);

  out << "serving obs on port " << server.port()
      << ": /metrics /healthz /tracez (exporter interval " << interval_ms
      << " ms, " << sessions << " session(s))\n";
  out.flush();

  g_serve_stop.store(false);
  std::signal(SIGINT, serve_stop_handler);
  std::signal(SIGTERM, serve_stop_handler);

  obs::Counter& iterations =
      obs::Registry::global().counter("serve.iterations");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(duration_ms);
  std::atomic<bool> parity_failed{false};
  std::vector<std::uint64_t> session_iters(sessions, 0);

  const auto session_main = [&](std::size_t index) {
    // One isolated session: its own plan cache and session<i>.* metric
    // scope over the shared process pool.
    Context::Options session_options;
    session_options.obs_prefix = "session" + std::to_string(index) + ".";
    const Context session_ctx{session_options};
    obs::Counter& session_iterations = session_ctx.counter("iterations");
    // Steady-state allocation hoists: the archive's codec config is
    // constant across iterations, so the codec (and its plan) is built
    // once; the decode output tensor and the probe's archive bytes are
    // reused in place. After the first lap a session's iteration loop
    // runs out of this context's BufferPool + these hoisted buffers —
    // session<i>.mempool.misses stays flat (the serve smoke asserts it).
    core::CodecPtr archive_codec;
    if (!archive_bytes.empty()) {
      const Archive archive = deserialize_archive(archive_bytes, session_ctx);
      archive_codec = make_archive_codec(archive, session_ctx);
    }
    Tensor restored;
    std::string bytes;
    while (!g_serve_stop.load()) {
      {
        AIC_TRACE_SCOPE("serve.iteration");
        if (!archive_bytes.empty()) {
          const Archive archive =
              deserialize_archive(archive_bytes, session_ctx);
          archive_codec->decompress_into(archive.packed,
                                         archive.original_shape, restored);
        }
        // The isolation proof: the same tensor through this session's
        // context must reproduce the reference bytes no matter what the
        // neighbor sessions are running on the shared pool.
        compress_to_archive_bytes(probe_input, kProbeSpec, write_options,
                                  nullptr, session_ctx, bytes);
        if (bytes != reference_bytes) {
          parity_failed.store(true);
          g_serve_stop.store(true);
        }
      }
      session_iterations.add();
      iterations.add();
      ++session_iters[index];
      if (duration_ms != 0 && std::chrono::steady_clock::now() >= deadline) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  };

  if (sessions == 1) {
    session_main(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      workers.emplace_back(session_main, i);
    }
    for (std::thread& worker : workers) worker.join();
  }

  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::uint64_t iters = 0;
  for (const std::uint64_t n : session_iters) iters += n;
  out << "serve: " << iters << " workload iterations across " << sessions
      << " session(s), " << obs::Exporter::global().samples_taken()
      << " metric samples, "
      << obs::Registry::global().counter("obs.http.scrapes").value()
      << " scrapes\n";
  if (parity_failed.load()) {
    out << "serve: PARITY FAILURE: a session produced archive bytes "
           "differing from the unloaded reference\n";
    return 1;
  }
  return 0;
}

int cmd_codecs(std::ostream& out) {
  out << "registered codecs (spec grammar kind[:key=value,...]):\n";
  for (const auto& [name, summary] : core::CodecFactory::global().list()) {
    out << "  " << std::left << std::setw(12) << name << " " << summary
        << "\n";
  }
  return 0;
}

int cmd_gen(const Options& options, std::ostream& out) {
  if (options.positional.size() != 1) {
    throw std::invalid_argument("gen: expected one output path");
  }
  const std::size_t batch = flag_size(options, "batch", 4);
  const std::size_t channels = flag_size(options, "channels", 3);
  const std::size_t res = flag_size(options, "res", 32);
  runtime::Rng rng(flag_size(options, "seed", 1));
  Tensor tensor(Shape::bchw(batch, channels, res, res));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      Tensor plane = data::smooth_field(res, res, rng, 6, 0.5);
      data::add_gaussian_noise(plane, rng, 0.02);
      tensor.set_plane(b, c, plane);
    }
  }
  io::save_tensor(tensor, options.positional[0]);
  out << "wrote " << tensor.shape().to_string() << " ("
      << tensor.size_bytes() << " bytes) to " << options.positional[0]
      << "\n";
  return 0;
}

/// Container knobs shared by compress: --archive-version,
/// --chunk-bytes (v4 chunk budget) and --entropy raw|packed|huffman|auto.
ArchiveWriteOptions archive_write_options(const Options& options) {
  ArchiveWriteOptions write;
  write.version = static_cast<std::uint32_t>(
      flag_size(options, "archive-version", kArchiveVersion));
  write.chunk_bytes = flag_size(options, "chunk-bytes", kDefaultChunkBytes);
  const auto it = options.flags.find("entropy");
  if (it != options.flags.end()) {
    write.entropy = baseline::parse_chunk_entropy(it->second);
  }
  return write;
}

int cmd_compress(const Options& options, std::ostream& out,
                 const Context& ctx) {
  if (options.positional.size() != 2) {
    throw std::invalid_argument("compress: expected <in.aict> <out.aicz>");
  }
  const Tensor input = io::load_tensor(options.positional[0]);
  core::CodecPtr codec;
  // The fused pipeline overlaps the transform of one plane group with
  // the chunk entropy encode of the previous one (v4; older versions
  // degrade to the two-phase path inside).
  const std::string bytes = compress_to_archive_bytes(
      input, codec_spec(options), archive_write_options(options), &codec,
      ctx);
  std::ofstream file(options.positional[1], std::ios::binary);
  if (!file) {
    throw std::runtime_error("compress: cannot open " + options.positional[1]);
  }
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) {
    throw std::runtime_error("compress: write failed: " +
                             options.positional[1]);
  }
  out << codec->name() << ": " << input.size_bytes() << " -> " << bytes.size()
      << " archive bytes (CR " << codec->compression_ratio() << ")\n";
  if (options.stats) print_stats(out, *codec, ctx);
  return 0;
}

int cmd_decompress(const Options& options, std::ostream& out,
                   const Context& ctx) {
  if (options.positional.size() != 2) {
    throw std::invalid_argument("decompress: expected <in.aicz> <out.aict>");
  }
  const Archive archive = load_archive(options.positional[0]);
  const core::CodecPtr codec = make_archive_codec(archive, ctx);
  const Tensor restored =
      codec->decompress(archive.packed, archive.original_shape);
  io::save_tensor(restored, options.positional[1]);
  out << "restored " << restored.shape().to_string() << " to "
      << options.positional[1] << "\n";
  if (options.stats) print_stats(out, *codec, ctx);
  return 0;
}

///// `aicomp verify <archive>`: full integrity pass over an archive —
/// container parse (v3 CRC32C checks included), codec rebuild, and a
/// complete decompress — without writing anything. A corrupt file exits
/// 1 with the typed CorruptStream diagnostic on stderr.
int cmd_verify(const Options& options, std::ostream& out,
               const Context& ctx) {
  if (options.positional.size() != 1) {
    throw std::invalid_argument("verify: expected one archive path");
  }
  const Archive archive = load_archive(options.positional[0]);
  const core::CodecPtr codec = make_archive_codec(archive, ctx);
  const Tensor restored =
      codec->decompress(archive.packed, archive.original_shape);
  out << "ok: codec=" << codec->name()
      << " original=" << archive.original_shape.to_string()
      << " packed=" << archive.packed.shape().to_string() << " ("
      << archive.packed.size_bytes() << " bytes)\n";
  if (options.stats) print_stats(out, *codec, ctx);
  return 0;
}

int cmd_info(const Options& options, std::ostream& out, const Context& ctx) {
  if (options.positional.size() != 1) {
    throw std::invalid_argument("info: expected one path");
  }
  const std::string& path = options.positional[0];
  try {
    // One mapped read serves both the full decode and the header probe —
    // info used to slurp the file twice (load_archive + a second
    // ifstream for probe_archive).
    const io::MappedFile file(path);
    const Archive archive = deserialize_archive(file.view(), ctx);
    const auto codec = make_archive_codec(archive, ctx);
    out << "archive: codec=" << codec->name()
        << " original=" << archive.original_shape.to_string()
        << " packed=" << archive.packed.shape().to_string() << " ("
        << archive.packed.size_bytes() << " bytes, CR "
        << codec->compression_ratio() << ")\n";
    const ArchiveProbe probe = probe_archive(file.view());
    out << "container: v" << probe.version;
    if (probe.chunk_count != 0) {
      out << " chunked: " << probe.chunk_count << " x " << probe.chunk_bytes
          << " bytes covering " << probe.payload_len << " payload bytes";
    } else {
      out << " unchunked: " << probe.payload_len << " payload bytes";
    }
    out << "\n";
    return 0;
  } catch (const std::exception&) {
    // Fall through to plain tensor.
  }
  const Tensor tensor = io::load_tensor(path);
  out << "tensor: shape=" << tensor.shape().to_string() << " ("
      << tensor.size_bytes() << " bytes), mean=" << tensor::mean(tensor)
      << " max|x|=" << tensor::max_abs(tensor) << "\n";
  return 0;
}

int cmd_eval(const Options& options, std::ostream& out, const Context& ctx) {
  if (options.positional.size() != 1) {
    throw std::invalid_argument("eval: expected one input path");
  }
  const Tensor input = io::load_tensor(options.positional[0]);
  // eval needs no archive, so any registered codec works here — zfp/sz/
  // jpeg comparators included.
  const core::CodecPtr codec = core::make_codec(codec_spec(options), ctx);
  const core::RateDistortion rd = core::evaluate_codec(*codec, input);
  out << codec->name() << ": CR=" << rd.compression_ratio
      << " MSE=" << rd.mse << " PSNR=" << rd.psnr_db
      << " dB max|err|=" << rd.max_abs_error << "\n";
  if (options.stats) print_stats(out, *codec, ctx);
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) return usage(err);
  // Baseline comparators live above core, so their factory entries are
  // registered explicitly before any spec is parsed.
  baseline::register_comparator_codecs();
  // AIC_OBS_PORT / AIC_METRICS_EXPORT_MS / AIC_METRICS_JSONL / AIC_FLIGHT
  // light up the continuous-telemetry stack for any command.
  obs::flight::set_provenance("cpu_backend", runtime::kernel_backend_name());
  obs::flight::set_provenance(
      "cpu_features", runtime::cpu_features().avx2 ? "avx2+fma" : "scalar");
  obs::observability_bootstrap_from_env();
  try {
    // `aicomp --metrics` / `aicomp --trace f.json` with no command run a
    // built-in probe workload.
    const bool bare = args[0].rfind("--", 0) == 0;
    const std::string command = bare ? "" : args[0];
    const Options options = parse(args, bare ? 0 : 1);

    // Pool sizing precedence: --threads, then AIC_THREADS, then the
    // legacy AIC_NUM_THREADS alias, then hardware concurrency. The env
    // legs apply lazily when the process pool is first created, so only
    // an explicit flag needs an up-front resize (the pool does not exist
    // yet, so no session can be holding it).
    const std::size_t threads_flag = flag_size(options, "threads", 0);
    if (threads_flag != 0) Context::set_process_threads(threads_flag);
    const Context ctx = Context::process_default();

    // AIC_TRACE (via runtime::env) or --trace turn span recording on
    // before the command executes.
    if (!options.trace_path.empty() ||
        !runtime::env_string("AIC_TRACE", "").empty()) {
      obs::set_tracing_enabled(true);
    }

    int rc;
    if (bare) {
      if (!options.metrics && options.trace_path.empty() &&
          options.metrics_out.empty()) {
        return usage(err);
      }
      rc = cmd_probe(out);
    } else if (command == "gen") {
      rc = cmd_gen(options, out);
    } else if (command == "compress") {
      rc = cmd_compress(options, out, ctx);
    } else if (command == "decompress") {
      rc = cmd_decompress(options, out, ctx);
    } else if (command == "verify") {
      rc = cmd_verify(options, out, ctx);
    } else if (command == "info") {
      rc = cmd_info(options, out, ctx);
    } else if (command == "eval") {
      rc = cmd_eval(options, out, ctx);
    } else if (command == "codecs") {
      rc = cmd_codecs(out);
    } else if (command == "serve") {
      rc = cmd_serve(options, out, ctx);
    } else {
      err << "unknown command: " << command << "\n";
      return usage(err);
    }

    if (!options.trace_path.empty()) {
      if (!obs::export_chrome_trace_file(options.trace_path)) {
        err << "error: cannot write trace to " << options.trace_path << "\n";
        return 1;
      }
      out << "wrote trace to " << options.trace_path << " ("
          << obs::collect_trace().size() << " spans)\n";
    }
    if (options.metrics) print_metrics(out);
    if (!options.metrics_out.empty()) {
      // Machine-readable --metrics: the full registry snapshot as JSON
      // (the same document the JSONL exporter appends per interval).
      std::ofstream file(options.metrics_out);
      if (!file) {
        err << "error: cannot write metrics to " << options.metrics_out
            << "\n";
        return 1;
      }
      obs::Registry::global().write_json(file);
      file << "\n";
      out << "wrote metrics to " << options.metrics_out << "\n";
    }
    return rc;
  } catch (const std::exception& error) {
    err << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace aic::cli
