#include "cli/cli.hpp"

#include <map>
#include <optional>
#include <stdexcept>

#include "cli/archive.hpp"
#include "core/metrics.hpp"
#include "data/synth.hpp"
#include "io/tensor_io.hpp"
#include "runtime/cpu_features.hpp"
#include "runtime/rng.hpp"
#include "tensor/gemm_kernels.hpp"
#include "tensor/ops.hpp"

namespace aic::cli {

namespace {

using tensor::Shape;
using tensor::Tensor;

struct Options {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
  bool triangle = false;
  bool stats = false;
};

Options parse(const std::vector<std::string>& args, std::size_t start) {
  Options options;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--triangle") {
      options.triangle = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("missing value for " + arg);
      }
      options.flags[arg.substr(2)] = args[++i];
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

std::size_t flag_size(const Options& options, const std::string& name,
                      std::size_t fallback) {
  const auto it = options.flags.find(name);
  if (it == options.flags.end()) return fallback;
  return static_cast<std::size_t>(std::stoull(it->second));
}

core::TransformKind flag_transform(const Options& options) {
  const auto it = options.flags.find("transform");
  if (it == options.flags.end()) return core::TransformKind::kDct2;
  if (it->second == "dct") return core::TransformKind::kDct2;
  if (it->second == "wht") return core::TransformKind::kWalshHadamard;
  if (it->second == "dst2") return core::TransformKind::kDst2;
  throw std::invalid_argument("unknown transform: " + it->second);
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  aicomp gen <out.aict> [--batch B --channels C --res N --seed S]\n"
         "  aicomp compress <in.aict> <out.aicz> [--cf N --block B "
         "--transform dct|wht|dst2 --triangle --stats]\n"
         "  aicomp decompress <in.aicz> <out.aict> [--stats]\n"
         "  aicomp info <file>\n"
         "  aicomp eval <in.aict> [--cf N --block B --transform ... "
         "--triangle --stats]\n"
         "\n"
         "  --stats prints per-codec counters (calls, planes, Eq. 5/7\n"
         "  FLOPs, bytes, wall time) after the operation.\n";
  return 2;
}

void print_op_stats(std::ostream& out, const char* label,
                    const core::CodecOpStats& op) {
  if (op.calls == 0) return;
  out << "  " << label << ": calls=" << op.calls << " planes=" << op.planes
      << " eq_flops=" << op.flops << " bytes " << op.bytes_in << " -> "
      << op.bytes_out << " in " << op.seconds << " s ("
      << op.gflops_per_second() << " GFLOP/s)\n";
}

void print_stats(std::ostream& out, const core::Codec& codec) {
  const core::CodecStatsSnapshot snap = codec.stats().snapshot();
  out << "stats[" << codec.name() << "]:\n";
  print_op_stats(out, "compress", snap.compress);
  print_op_stats(out, "decompress", snap.decompress);
  const tensor::GemmCounters kc = tensor::gemm_counters();
  out << "kernels[" << runtime::kernel_backend_name()
      << "]: gemm_calls=" << kc.gemm_calls << " a_panels=" << kc.a_panels_packed
      << " b_panels=" << kc.b_panels_packed
      << " microkernel_calls=" << kc.microkernel_calls
      << " tail_tiles=" << kc.tail_tiles << " axpy_calls=" << kc.axpy_calls
      << " block_mac_calls=" << kc.block_mac_calls
      << " gemm_flops=" << kc.flops << "\n";
}

int cmd_gen(const Options& options, std::ostream& out) {
  if (options.positional.size() != 1) {
    throw std::invalid_argument("gen: expected one output path");
  }
  const std::size_t batch = flag_size(options, "batch", 4);
  const std::size_t channels = flag_size(options, "channels", 3);
  const std::size_t res = flag_size(options, "res", 32);
  runtime::Rng rng(flag_size(options, "seed", 1));
  Tensor tensor(Shape::bchw(batch, channels, res, res));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      Tensor plane = data::smooth_field(res, res, rng, 6, 0.5);
      data::add_gaussian_noise(plane, rng, 0.02);
      tensor.set_plane(b, c, plane);
    }
  }
  io::save_tensor(tensor, options.positional[0]);
  out << "wrote " << tensor.shape().to_string() << " ("
      << tensor.size_bytes() << " bytes) to " << options.positional[0]
      << "\n";
  return 0;
}

int cmd_compress(const Options& options, std::ostream& out) {
  if (options.positional.size() != 2) {
    throw std::invalid_argument("compress: expected <in.aict> <out.aicz>");
  }
  const Tensor input = io::load_tensor(options.positional[0]);
  core::CodecPtr codec;
  const Archive archive = compress_to_archive(
      input, flag_size(options, "cf", 4), flag_size(options, "block", 8),
      flag_transform(options), options.triangle, &codec);
  save_archive(archive, options.positional[1]);
  out << codec->name() << ": " << input.size_bytes() << " -> "
      << archive.packed.size_bytes() << " bytes (CR "
      << codec->compression_ratio() << ")\n";
  if (options.stats) print_stats(out, *codec);
  return 0;
}

int cmd_decompress(const Options& options, std::ostream& out) {
  if (options.positional.size() != 2) {
    throw std::invalid_argument("decompress: expected <in.aicz> <out.aict>");
  }
  const Archive archive = load_archive(options.positional[0]);
  const core::CodecPtr codec = make_archive_codec(archive);
  const Tensor restored =
      codec->decompress(archive.packed, archive.original_shape);
  io::save_tensor(restored, options.positional[1]);
  out << "restored " << restored.shape().to_string() << " to "
      << options.positional[1] << "\n";
  if (options.stats) print_stats(out, *codec);
  return 0;
}

int cmd_info(const Options& options, std::ostream& out) {
  if (options.positional.size() != 1) {
    throw std::invalid_argument("info: expected one path");
  }
  const std::string& path = options.positional[0];
  try {
    const Archive archive = load_archive(path);
    const auto codec = make_archive_codec(archive);
    out << "archive: codec=" << codec->name()
        << " original=" << archive.original_shape.to_string()
        << " packed=" << archive.packed.shape().to_string() << " ("
        << archive.packed.size_bytes() << " bytes, CR "
        << codec->compression_ratio() << ")\n";
    return 0;
  } catch (const std::exception&) {
    // Fall through to plain tensor.
  }
  const Tensor tensor = io::load_tensor(path);
  out << "tensor: shape=" << tensor.shape().to_string() << " ("
      << tensor.size_bytes() << " bytes), mean=" << tensor::mean(tensor)
      << " max|x|=" << tensor::max_abs(tensor) << "\n";
  return 0;
}

int cmd_eval(const Options& options, std::ostream& out) {
  if (options.positional.size() != 1) {
    throw std::invalid_argument("eval: expected one input path");
  }
  const Tensor input = io::load_tensor(options.positional[0]);
  const Archive archive = compress_to_archive(
      input, flag_size(options, "cf", 4), flag_size(options, "block", 8),
      flag_transform(options), options.triangle);
  const auto codec = make_archive_codec(archive);
  const core::RateDistortion rd = core::evaluate_codec(*codec, input);
  out << codec->name() << ": CR=" << rd.compression_ratio
      << " MSE=" << rd.mse << " PSNR=" << rd.psnr_db
      << " dB max|err|=" << rd.max_abs_error << "\n";
  if (options.stats) print_stats(out, *codec);
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) return usage(err);
  try {
    const std::string& command = args[0];
    const Options options = parse(args, 1);
    if (command == "gen") return cmd_gen(options, out);
    if (command == "compress") return cmd_compress(options, out);
    if (command == "decompress") return cmd_decompress(options, out);
    if (command == "info") return cmd_info(options, out);
    if (command == "eval") return cmd_eval(options, out);
    err << "unknown command: " << command << "\n";
    return usage(err);
  } catch (const std::exception& error) {
    err << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace aic::cli
