#pragma once

#include <cstddef>
#include <set>
#include <string>

#include "graph/op.hpp"
#include "tensor/dtype.hpp"

namespace aic::accel {

/// Architecture class from Table 1.
enum class ArchClass { kDataflow, kSimd, kMimd, kGpu, kCpu };

std::string arch_name(ArchClass arch);

/// Static description of one platform: the Table 1 row plus the
/// programmability constraints §3.1 derives from it. All byte quantities
/// are exact powers-of-ten/two approximations of the published specs.
struct AcceleratorSpec {
  std::string name;
  ArchClass arch = ArchClass::kCpu;
  std::size_t compute_units = 0;
  std::size_t ocm_bytes = 0;          // on-chip memory capacity
  std::size_t ocm_per_cu_bytes = 0;   // per-compute-unit local memory
  std::string software;               // supported frameworks (Table 1)
  tensor::HalfFormat half_format = tensor::HalfFormat::kFp16;  // §3.1

  /// PyTorch operators the platform's frontend can lower (§3.1).
  std::set<graph::OpKind> supported_ops;

  /// 0 = unlimited. GroqChip's MXM handles at most 320×320 operands [9].
  std::size_t max_matmul_dim = 0;
  /// 0 = unlimited. SN30: one PMU holds 0.5 MB, bounding any single
  /// tensor plane routed through it (§3.5.1).
  std::size_t max_plane_bytes = 0;
  /// 0 = unlimited. GroqChip's static instruction schedule exhausts
  /// on-chip memory beyond batch 1000 (§4.2.2).
  std::size_t max_batch = 0;
  /// Fraction of OCM usable for data (rest: schedules, buffers).
  double ocm_usable_fraction = 1.0;

  /// Measured ResNet34/CIFAR-10 training throughput (samples/s) the
  /// paper reports for the pipeline-overlap analysis (§4.2.2); 0 when
  /// the paper gives none.
  double resnet34_train_samples_per_s = 0.0;

  /// Approximate system/board power draw (public figures). The paper's
  /// key-takeaway caveat — "power differences are not accounted for in
  /// this evaluation" — is addressed by the energy-normalized comparison
  /// in bench_energy.
  double tdp_watts = 0.0;
};

/// The operator set every platform's PyTorch frontend supports.
std::set<graph::OpKind> portable_op_set();

/// portable set + gather/scatter (IPU, GPU, CPU).
std::set<graph::OpKind> indexed_op_set();

/// Everything, including bitwise ops (CPU and CUDA only).
std::set<graph::OpKind> full_op_set();

// Table 1 rows.
AcceleratorSpec cs2_spec();
AcceleratorSpec sn30_spec();
AcceleratorSpec groq_spec();
AcceleratorSpec ipu_spec();
AcceleratorSpec a100_spec();
AcceleratorSpec cpu_spec();

}  // namespace aic::accel
