#pragma once

#include <cstddef>

#include "accel/accelerator.hpp"

namespace aic::accel {

/// Data-parallel multi-device scaling (§4.2.2 "Comparison with GPU":
/// "both the GroqChip and IPU are generally deployed with other
/// GroqChips or IPUs ... GroqChip and IPU rely on scalability to
/// outperform GPU").
///
/// The batch is sharded evenly across `devices`; each device runs the
/// shard graph independently (the codec has no cross-sample
/// dependencies), and the host pays a per-device fan-out/coordination
/// cost. Deployment references: Graphcore Bow-Pod64 (64 IPUs),
/// GroqNode (8 GroqChips).
struct ScalingConfig {
  std::size_t devices = 1;
  /// Host-side per-device dispatch/collection cost per invocation.
  double per_device_overhead_s = 1e-4;
};

/// Simulated time of one invocation of `shard_graph` replicated over
/// `config.devices` devices. `shard_graph` must already describe ONE
/// device's share of the batch. Throws when the shard does not compile.
SimTime estimate_data_parallel(const Accelerator& device,
                               const graph::Graph& shard_graph,
                               const ScalingConfig& config);

}  // namespace aic::accel
