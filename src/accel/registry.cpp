#include "accel/registry.hpp"

#include <stdexcept>

namespace aic::accel {

std::string platform_name(Platform platform) {
  switch (platform) {
    case Platform::kCs2: return "cs2";
    case Platform::kSn30: return "sn30";
    case Platform::kGroq: return "groq";
    case Platform::kIpu: return "ipu";
    case Platform::kA100: return "a100";
    case Platform::kCpu: return "cpu";
  }
  return "?";
}

Accelerator make_accelerator(Platform platform) {
  switch (platform) {
    case Platform::kCs2: return {cs2_spec(), cs2_cost_params()};
    case Platform::kSn30: return {sn30_spec(), sn30_cost_params()};
    case Platform::kGroq: return {groq_spec(), groq_cost_params()};
    case Platform::kIpu: return {ipu_spec(), ipu_cost_params()};
    case Platform::kA100: return {a100_spec(), a100_cost_params()};
    case Platform::kCpu: return {cpu_spec(), cpu_cost_params()};
  }
  throw std::invalid_argument("unknown platform");
}

std::vector<Platform> paper_accelerators() {
  return {Platform::kCs2, Platform::kSn30, Platform::kGroq, Platform::kIpu};
}

std::vector<Platform> all_platforms() {
  return {Platform::kCs2, Platform::kSn30, Platform::kGroq,
          Platform::kIpu, Platform::kA100, Platform::kCpu};
}

}  // namespace aic::accel
