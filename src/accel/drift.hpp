#pragma once

#include <string>
#include <vector>

#include "accel/registry.hpp"

namespace aic::accel {

/// One platform's predicted-vs-measured row from a drift probe.
struct DriftRow {
  std::string platform;
  bool compiled = false;
  /// Compiler diagnostic when `compiled` is false.
  std::string error;
  /// Simulated invocation time from the calibrated cost model.
  double predicted_s = 0.0;
  /// Host wall time the executor actually spent on the graph math.
  double measured_s = 0.0;
  /// measured / predicted (0 when either side is unavailable). The
  /// absolute value is meaningless — the host is not the accelerator —
  /// but a platform whose ratio moves between commits has a cost-model
  /// or executor regression.
  double drift_ratio() const {
    return (compiled && predicted_s > 0.0) ? measured_s / predicted_s : 0.0;
  }
};

/// Options for a drift probe run.
struct DriftProbeOptions {
  std::size_t batch = 4;
  std::size_t channels = 3;
  std::size_t resolution = 32;
  std::size_t cf = 4;
  std::size_t block = 8;
};

/// Runs one small DCT+Chop compress graph through every platform in
/// `platforms` (default: the four paper accelerators), returning one row
/// per platform. Also publishes the per-platform "accel.<name>.*" drift
/// metrics as a side effect of the runs.
std::vector<DriftRow> cost_model_drift_probe(
    const DriftProbeOptions& options = {},
    const std::vector<Platform>& platforms = paper_accelerators());

}  // namespace aic::accel
