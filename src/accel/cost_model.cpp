#include "accel/cost_model.hpp"

#include <algorithm>

namespace aic::accel {

namespace {
constexpr double kGiga = 1e9;
}

SimTime simulate(const CostParams& params, ArchClass arch,
                 const graph::ExecutionTrace& trace) {
  SimTime time;
  time.h2d_s =
      static_cast<double>(trace.input_bytes) / (params.h2d_gbps * kGiga);
  time.d2h_s =
      static_cast<double>(trace.output_bytes) / (params.d2h_gbps * kGiga);
  time.compute_s =
      static_cast<double>(trace.flops) / (params.compute_gflops * kGiga);
  if (params.pressure_coeff > 0.0 && params.pressure_ocm_bytes > 0) {
    // Near-capacity working sets spill across tiles / to streaming
    // memory, degrading every data path.
    const double occupancy =
        std::min(static_cast<double>(trace.resident_bytes) /
                     static_cast<double>(params.pressure_ocm_bytes),
                 0.95);
    const double factor = 1.0 / (1.0 - params.pressure_coeff * occupancy);
    time.h2d_s *= factor;
    time.d2h_s *= factor;
    time.compute_s *= factor;
  }
  time.overhead_s = params.launch_overhead_s +
                    params.per_node_overhead_s *
                        static_cast<double>(trace.node_evaluations);
  if (params.small_plane_threshold_bytes > 0 && trace.matmul_plane_ops > 0 &&
      trace.min_matmul_plane_bytes < params.small_plane_threshold_bytes) {
    // Many tiny tensors defeat the RDU's bulk memory scheduling: each
    // plane-level product pays a routing/launch toll.
    time.overhead_s += params.small_plane_overhead_s *
                       static_cast<double>(trace.matmul_plane_ops);
  }
  time.overhead_s += params.indexed_element_overhead_s *
                     static_cast<double>(trace.indexed_elements);
  if (arch == ArchClass::kDataflow && params.pipeline_fill_s > 0.0) {
    // The wafer/RDU pipeline overlaps ingest with compute but cannot
    // finish before the pipeline has filled and drained once.
    const double streamed = time.h2d_s + time.compute_s;
    const double floor = params.pipeline_fill_s;
    const double overlapped = std::max(streamed, floor);
    time.compute_s = std::max(0.0, overlapped - time.h2d_s);
  }
  return time;
}

double throughput_gbps(std::size_t payload_bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(payload_bytes) / (seconds * kGiga);
}

CostParams cs2_cost_params() {
  // §4.2.2: 16-26 GB/s, compression slower than decompression, flat in
  // batch until the pipeline fills.
  CostParams p;
  p.h2d_gbps = 26.0;
  p.d2h_gbps = 80.0;
  p.compute_gflops = 400'000.0;  // wafer-scale: compute never dominates
  p.launch_overhead_s = 3e-4;
  p.per_node_overhead_s = 1e-5;
  p.pipeline_fill_s = 1.2e-3;
  return p;
}

CostParams sn30_cost_params() {
  // §4.2.2: 7-10 GB/s; CR 16 pays a small-tensor toll; linear in batch.
  CostParams p;
  p.h2d_gbps = 9.5;
  p.d2h_gbps = 30.0;
  p.compute_gflops = 25'000.0;
  p.launch_overhead_s = 2e-4;
  p.per_node_overhead_s = 5e-6;
  p.pipeline_fill_s = 3e-4;
  p.small_plane_overhead_s = 2e-7;
  p.small_plane_threshold_bytes = 2048;  // CF=2 planes at 64×64 are 1 KB
  return p;
}

CostParams groq_cost_params() {
  // §4.2.2: ≈150 MB/s compression, ≈200 MB/s decompression. The immature
  // GroqFlow host loop round-trips every invocation through PCIe at
  // pageable-memory speed and the MXM runs far below peak on fp32.
  CostParams p;
  p.h2d_gbps = 0.25;
  p.d2h_gbps = 0.5;
  p.compute_gflops = 20.0;
  p.launch_overhead_s = 1e-3;
  p.per_node_overhead_s = 2e-5;
  return p;
}

CostParams ipu_cost_params() {
  // §4.2.2: ≈1.2 GB/s compression flat across CR (ingest-bound); up to
  // 21 GB/s decompression at high CR (ingest shrinks with CR; results
  // feed the on-device training loop rather than returning to host).
  CostParams p;
  p.h2d_gbps = 1.3;
  p.d2h_gbps = 40.0;
  p.compute_gflops = 4'000.0;
  p.launch_overhead_s = 2e-4;
  p.per_node_overhead_s = 5e-6;
  p.indexed_element_overhead_s = 1.2e-8;  // per-tile exchange per element
  p.pressure_coeff = 0.75;                // spill to streaming memory
  p.pressure_ocm_bytes = 900ull << 20;
  return p;
}

CostParams a100_cost_params() {
  // §4.2.2 / Fig. 14: ≈2.5 GB/s decompression, flat across CR — the
  // pageable-memory device→host copy of the uncompressed result
  // dominates, so time tracks output size, not CR.
  CostParams p;
  p.h2d_gbps = 20.0;
  p.d2h_gbps = 2.6;
  p.compute_gflops = 19'500.0;
  p.launch_overhead_s = 5e-5;
  p.per_node_overhead_s = 2e-6;
  return p;
}

CostParams cpu_cost_params() {
  // Reference host execution: no transfer at all.
  CostParams p;
  p.h2d_gbps = 1e6;
  p.d2h_gbps = 1e6;
  p.compute_gflops = 50.0;
  p.launch_overhead_s = 1e-6;
  p.per_node_overhead_s = 1e-7;
  return p;
}

}  // namespace aic::accel
