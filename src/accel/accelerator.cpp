#include "accel/accelerator.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aic::accel {

using graph::Graph;
using graph::OpKind;

CompileResult Accelerator::compile_check(const Graph& g) const {
  CompileResult result;
  result.constant_bytes = g.constant_bytes();
  result.activation_bytes = g.activation_bytes();
  result.max_plane_bytes = g.max_plane_bytes();
  result.max_matmul_dim = g.max_matmul_dim();
  result.static_flops = g.static_flops();

  // 1. Operator audit (§3.1 "Programmability and Operator Support").
  for (OpKind kind : g.ops_used()) {
    if (!spec_.supported_ops.contains(kind)) {
      result.error = spec_.name + ": operator '" + graph::op_name(kind) +
                     "' is not supported by the platform frontend";
      return result;
    }
  }

  // 2. Static schedule length (GroqChip batch limit, §4.2.2).
  if (spec_.max_batch > 0) {
    for (graph::NodeId id : g.input_ids()) {
      const tensor::Shape& s = g.node(id).shape;
      if (s.rank() == 4 && s[0] > spec_.max_batch) {
        std::ostringstream out;
        out << spec_.name << ": batch " << s[0]
            << " exceeds the static instruction schedule limit ("
            << spec_.max_batch << ")";
        result.error = out.str();
        return result;
      }
    }
  }

  // 3. MXM tile limit (GroqChip 320×320 [9]).
  if (spec_.max_matmul_dim > 0 &&
      result.max_matmul_dim > spec_.max_matmul_dim) {
    std::ostringstream out;
    out << spec_.name << ": matmul operand dimension "
        << result.max_matmul_dim << " exceeds the " << spec_.max_matmul_dim
        << "-wide matrix unit";
    result.error = out.str();
    return result;
  }

  // 4. Per-compute-unit tile capacity (SN30 PMU, §3.5.1).
  if (spec_.max_plane_bytes > 0 &&
      result.max_plane_bytes > spec_.max_plane_bytes) {
    std::ostringstream out;
    out << spec_.name << ": tensor plane of " << result.max_plane_bytes
        << " B does not fit a " << spec_.max_plane_bytes
        << " B memory unit (out-of-memory on-chip)";
    result.error = out.str();
    return result;
  }

  // 5. Aggregate on-chip memory: weights + materialized activations.
  const double usable =
      static_cast<double>(spec_.ocm_bytes) * spec_.ocm_usable_fraction;
  const double resident =
      static_cast<double>(result.constant_bytes + result.activation_bytes);
  if (resident > usable) {
    std::ostringstream out;
    out << spec_.name << ": graph needs "
        << static_cast<std::size_t>(resident) << " B on-chip but only "
        << static_cast<std::size_t>(usable)
        << " B are available (out-of-memory on-chip)";
    result.error = out.str();
    return result;
  }

  result.ok = true;
  return result;
}

std::unique_ptr<CompiledModel> Accelerator::compile(Graph g) const {
  CompileResult report = compile_check(g);
  if (!report.ok) {
    throw std::runtime_error("compile failed: " + report.error);
  }
  return std::make_unique<CompiledModel>(std::move(g), std::move(report));
}

RunResult Accelerator::run(CompiledModel& model,
                           const std::vector<tensor::Tensor>& inputs) const {
  AIC_TRACE_SCOPE("accel.run");
  RunResult result;
  result.outputs = model.executor().run(inputs);
  result.trace = model.executor().trace();
  result.time = simulate(cost_, spec_.arch, result.trace);
  result.host_seconds = model.executor().host_seconds();
  result.op_timings = model.executor().op_timings();
  publish_drift(result);
  // An executed trace must be exactly what the static shapes predicted;
  // a mismatch means a simulator is costing a different program than the
  // one the executor ran.
  if (graph::static_trace(model.executor().graph()) != result.trace) {
    obs::Registry::global().counter("accel.trace_mismatch").add(1);
  }
  return result;
}

void Accelerator::publish_drift(const RunResult& result) const {
  obs::Registry& reg = obs::Registry::global();
  const std::string prefix = "accel." + spec_.name + ".";
  reg.counter(prefix + "runs").add(1);
  reg.gauge(prefix + "predicted_s").set(result.time.total_s());
  reg.gauge(prefix + "measured_s").set(result.host_seconds);
  if (result.time.total_s() > 0.0) {
    reg.gauge(prefix + "drift_ratio")
        .set(result.host_seconds / result.time.total_s());
  }
  reg.histogram(prefix + "host_ns")
      .record(static_cast<std::uint64_t>(result.host_seconds * 1e9));
}

RunResult Accelerator::compile_and_run(
    Graph g, const std::vector<tensor::Tensor>& inputs) const {
  auto model = compile(std::move(g));
  return run(*model, inputs);
}

SimTime Accelerator::estimate(const Graph& g) const {
  const CompileResult report = compile_check(g);
  if (!report.ok) {
    throw std::runtime_error("compile failed: " + report.error);
  }
  return simulate(cost_, spec_.arch, graph::static_trace(g));
}

}  // namespace aic::accel
