#pragma once

#include "accel/spec.hpp"
#include "graph/executor.hpp"

namespace aic::accel {

/// Calibrated performance parameters of one platform. Values are
/// *effective* host-observed figures fitted to the throughputs §4.2.2
/// reports (see DESIGN.md §5); they are not datasheet peaks.
struct CostParams {
  /// Host→device bandwidth applied to all graph inputs (GB/s).
  double h2d_gbps = 10.0;
  /// Device→host bandwidth applied to all marked outputs (GB/s).
  double d2h_gbps = 10.0;
  /// Effective fp32 compute throughput (GFLOP/s).
  double compute_gflops = 1000.0;
  /// Fixed cost of one invocation (kernel/section launch, host sync).
  double launch_overhead_s = 1e-4;
  /// Cost per graph node (scheduling/dispatch).
  double per_node_overhead_s = 1e-6;
  /// Dataflow pipeline fill latency: the invocation cannot complete
  /// faster than this, producing the flat small-batch region of
  /// Fig. 12/13.
  double pipeline_fill_s = 0.0;
  /// Extra cost per plane-level matmul when the smallest matmul output
  /// plane is below `small_plane_threshold_bytes` — SN30's small-tensor
  /// overhead (§4.2.2: CR 16 slower than CR 4/7.11).
  double small_plane_overhead_s = 0.0;
  std::size_t small_plane_threshold_bytes = 0;
  /// Cost per element moved by gather/scatter. Indexed moves bypass the
  /// bulk exchange paths; on the IPU this makes the §3.5.2 variant
  /// 1.5-2.7× slower than plain DCT+Chop (Fig. 17).
  double indexed_element_overhead_s = 0.0;
  /// Memory-pressure degradation: transfer and compute slow down by
  /// 1 / (1 − coeff · resident/ocm) as the working set approaches
  /// `pressure_ocm_bytes` (tile spilling). 0 disables the term.
  double pressure_coeff = 0.0;
  std::size_t pressure_ocm_bytes = 0;
};

/// One simulated invocation, decomposed the way the paper reasons about
/// host-measured time.
struct SimTime {
  double h2d_s = 0.0;
  double compute_s = 0.0;
  double d2h_s = 0.0;
  double overhead_s = 0.0;

  double total_s() const { return h2d_s + compute_s + d2h_s + overhead_s; }
};

/// Applies the cost model to an execution trace.
SimTime simulate(const CostParams& params, ArchClass arch,
                 const graph::ExecutionTrace& trace);

/// Host-observed throughput in GB/s for `payload_bytes` of *uncompressed*
/// data processed in `seconds` — the metric of Figs. 10-17.
double throughput_gbps(std::size_t payload_bytes, double seconds);

/// Calibrated parameters per platform (DESIGN.md §5 table).
CostParams cs2_cost_params();
CostParams sn30_cost_params();
CostParams groq_cost_params();
CostParams ipu_cost_params();
CostParams a100_cost_params();
CostParams cpu_cost_params();

}  // namespace aic::accel
