#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "accel/cost_model.hpp"
#include "accel/spec.hpp"
#include "graph/executor.hpp"
#include "graph/graph.hpp"

namespace aic::accel {

/// Outcome of handing a graph to a platform compiler. When `ok` is
/// false, `error` explains the rejection in the vocabulary the paper
/// uses (unsupported operator, PMU/OCM exhaustion, MXM tile limit,
/// schedule length).
struct CompileResult {
  bool ok = false;
  std::string error;
  // Resource report (filled on success and, where known, on failure).
  std::size_t constant_bytes = 0;
  std::size_t activation_bytes = 0;
  std::size_t max_plane_bytes = 0;
  std::size_t max_matmul_dim = 0;
  std::size_t static_flops = 0;
};

/// One simulated invocation's result.
struct RunResult {
  std::vector<tensor::Tensor> outputs;
  SimTime time;
  graph::ExecutionTrace trace;
  /// Host wall time actually spent executing the graph numerically —
  /// the "measured" side of the cost-model drift accounting. Simulated
  /// `time` is the "predicted" side; their ratio is published to the
  /// metrics registry per platform on every run.
  double host_seconds = 0.0;
  /// Host wall time per operator kind (indexed by OpKind).
  std::array<graph::OpTiming, graph::kOpKindCount> op_timings{};
};

/// A graph admitted by a platform compiler, ready to run.
class CompiledModel {
 public:
  CompiledModel(graph::Graph graph, CompileResult report)
      : executor_(std::move(graph)), report_(std::move(report)) {}

  const CompileResult& report() const { return report_; }
  graph::Executor& executor() { return executor_; }

 private:
  graph::Executor executor_;
  CompileResult report_;
};

/// An accelerator simulator: enforces the platform's compile-time
/// constraints, executes admitted graphs bit-exactly on the host, and
/// charges time from the platform's calibrated cost model.
class Accelerator {
 public:
  Accelerator(AcceleratorSpec spec, CostParams cost)
      : spec_(std::move(spec)), cost_(cost) {}

  const AcceleratorSpec& spec() const { return spec_; }
  const CostParams& cost_params() const { return cost_; }

  /// Platform compilation: operator audit, memory capacity, per-unit
  /// tile limits, schedule limits. Mirrors §3.1's constraint list.
  CompileResult compile_check(const graph::Graph& g) const;

  /// compile_check + executor construction. Throws std::runtime_error
  /// with the compiler diagnostic when the graph is rejected.
  std::unique_ptr<CompiledModel> compile(graph::Graph g) const;

  /// Runs one invocation and simulates its wall time.
  RunResult run(CompiledModel& model,
                const std::vector<tensor::Tensor>& inputs) const;

  /// Convenience: compile + run once. Throws when compilation fails.
  RunResult compile_and_run(graph::Graph g,
                            const std::vector<tensor::Tensor>& inputs) const;

  /// Simulated wall time of one invocation from static shapes alone —
  /// no numerical execution. Lets the timing benches cost paper-scale
  /// problems (512×512, batch 5000) cheaply. Throws when the graph does
  /// not compile.
  SimTime estimate(const graph::Graph& g) const;

 private:
  /// Publishes predicted-vs-measured time for one run to the process
  /// metrics registry under "accel.<spec name>.*".
  void publish_drift(const RunResult& result) const;

  AcceleratorSpec spec_;
  CostParams cost_;
};

}  // namespace aic::accel
