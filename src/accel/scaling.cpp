#include "accel/scaling.hpp"

#include <stdexcept>

namespace aic::accel {

SimTime estimate_data_parallel(const Accelerator& device,
                               const graph::Graph& shard_graph,
                               const ScalingConfig& config) {
  if (config.devices == 0) {
    throw std::invalid_argument("estimate_data_parallel: devices must be >= 1");
  }
  // Devices run concurrently on their shards (each has its own host
  // link in GroqNode/Bow-Pod deployments), so the critical path is one
  // shard plus the serial host fan-out over all devices.
  SimTime time = device.estimate(shard_graph);
  time.overhead_s += config.per_device_overhead_s *
                     static_cast<double>(config.devices - 1);
  return time;
}

}  // namespace aic::accel
