#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"

namespace aic::accel {

/// The platforms of Table 1 plus the paper's two comparison targets.
enum class Platform { kCs2, kSn30, kGroq, kIpu, kA100, kCpu };

std::string platform_name(Platform platform);

/// Builds a simulator with the platform's spec and calibrated costs.
Accelerator make_accelerator(Platform platform);

/// The four AI accelerators evaluated throughout §4.
std::vector<Platform> paper_accelerators();

/// All simulated platforms (accelerators + A100 + CPU).
std::vector<Platform> all_platforms();

}  // namespace aic::accel
