#include "accel/spec.hpp"

namespace aic::accel {

using graph::OpKind;

std::string arch_name(ArchClass arch) {
  switch (arch) {
    case ArchClass::kDataflow: return "Dataflow";
    case ArchClass::kSimd: return "SIMD";
    case ArchClass::kMimd: return "MIMD";
    case ArchClass::kGpu: return "GPU";
    case ArchClass::kCpu: return "CPU";
  }
  return "?";
}

std::set<OpKind> portable_op_set() {
  // §3.1: matmul/elementwise/movement exist everywhere; bit shifts and
  // indexed ops do not.
  return {OpKind::kInput,     OpKind::kConstant, OpKind::kMatMul,
          OpKind::kAdd,       OpKind::kMul,      OpKind::kRelu,
          OpKind::kReshape,   OpKind::kTranspose, OpKind::kQuantize,
          OpKind::kDequantize};
}

std::set<OpKind> indexed_op_set() {
  std::set<OpKind> ops = portable_op_set();
  ops.insert(OpKind::kGather);
  ops.insert(OpKind::kScatter);
  return ops;
}

std::set<OpKind> full_op_set() {
  std::set<OpKind> ops = indexed_op_set();
  ops.insert(OpKind::kBitShiftLeft);
  ops.insert(OpKind::kBitShiftRight);
  ops.insert(OpKind::kBitAnd);
  ops.insert(OpKind::kBitOr);
  ops.insert(OpKind::kBitNot);
  return ops;
}

AcceleratorSpec cs2_spec() {
  AcceleratorSpec spec;
  spec.name = "cerebras-cs2";
  spec.arch = ArchClass::kDataflow;
  spec.compute_units = 850'000;
  spec.ocm_bytes = 40ull << 30;         // 40 GB wafer SRAM
  spec.ocm_per_cu_bytes = 48 << 10;     // 48 KB per PE
  spec.software = "TF, PT, CSL";
  spec.half_format = tensor::HalfFormat::kFp16;
  spec.supported_ops = portable_op_set();
  spec.resnet34_train_samples_per_s = 205.0;  // §4.2.2
  spec.tdp_watts = 20000.0;  // wafer-scale system draw (~20-23 kW)
  return spec;
}

AcceleratorSpec sn30_spec() {
  AcceleratorSpec spec;
  spec.name = "sambanova-sn30";
  spec.arch = ArchClass::kDataflow;
  spec.compute_units = 1280;            // PCUs per RDU
  spec.ocm_bytes = 640ull << 20;        // 640 MB of PMUs
  spec.ocm_per_cu_bytes = 512 << 10;    // 0.5 MB per PMU
  spec.software = "SF, PT";
  spec.half_format = tensor::HalfFormat::kBf16;  // §3.1
  spec.supported_ops = portable_op_set();
  spec.max_plane_bytes = 512 << 10;     // one plane must fit one PMU
  spec.resnet34_train_samples_per_s = 570.0;  // §4.2.2
  spec.tdp_watts = 1250.0;  // one RDU's share of a DataScale node
  return spec;
}

AcceleratorSpec groq_spec() {
  AcceleratorSpec spec;
  spec.name = "groq-groqchip";
  spec.arch = ArchClass::kSimd;
  spec.compute_units = 5120;
  spec.ocm_bytes = 230ull << 20;        // 230 MB
  spec.ocm_per_cu_bytes = 46 << 10;     // ≈0.045 MB per ALU
  spec.software = "PT, Keras, ONNX";
  spec.half_format = tensor::HalfFormat::kFp16;
  spec.supported_ops = portable_op_set();
  spec.max_matmul_dim = 320;            // MXM tile limit [9]
  spec.max_batch = 1000;                // static schedule limit (§4.2.2)
  spec.tdp_watts = 275.0;               // GroqCard max draw
  return spec;
}

AcceleratorSpec ipu_spec() {
  AcceleratorSpec spec;
  spec.name = "graphcore-ipu";
  spec.arch = ArchClass::kMimd;
  spec.compute_units = 1472;
  spec.ocm_bytes = 900ull << 20;        // 900 MB distributed SRAM
  spec.ocm_per_cu_bytes = 624 << 10;    // ≈0.61 MB per core
  spec.software = "TF, PT, PopArt";
  spec.half_format = tensor::HalfFormat::kFp16;
  spec.supported_ops = indexed_op_set();  // torch.scatter/gather (§3.5.2)
  spec.tdp_watts = 300.0;                 // Bow IPU board-level draw
  return spec;
}

AcceleratorSpec a100_spec() {
  AcceleratorSpec spec;
  spec.name = "nvidia-a100";
  spec.arch = ArchClass::kGpu;
  spec.compute_units = 108;             // SMs
  spec.ocm_bytes = 80ull << 30;         // 80 GB HBM (treated as on-device)
  spec.ocm_per_cu_bytes = 192 << 10;    // shared memory + L1 per SM
  spec.software = "PT, TF, CUDA";
  spec.half_format = tensor::HalfFormat::kFp16;
  spec.supported_ops = full_op_set();
  spec.tdp_watts = 300.0;  // A100 PCIe TDP
  return spec;
}

AcceleratorSpec cpu_spec() {
  AcceleratorSpec spec;
  spec.name = "cpu-reference";
  spec.arch = ArchClass::kCpu;
  spec.compute_units = 64;
  spec.ocm_bytes = 256ull << 30;
  spec.ocm_per_cu_bytes = 1 << 20;
  spec.software = "native";
  spec.half_format = tensor::HalfFormat::kFp16;
  spec.supported_ops = full_op_set();
  spec.tdp_watts = 250.0;
  return spec;
}

}  // namespace aic::accel
