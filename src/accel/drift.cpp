#include "accel/drift.hpp"

#include "graph/builders.hpp"
#include "runtime/rng.hpp"
#include "tensor/tensor.hpp"

namespace aic::accel {

std::vector<DriftRow> cost_model_drift_probe(
    const DriftProbeOptions& options,
    const std::vector<Platform>& platforms) {
  const core::DctChopConfig config{.height = options.resolution,
                                   .width = options.resolution,
                                   .cf = options.cf,
                                   .block = options.block};
  graph::Graph g = graph::build_compress_graph(
      config, {.batch = options.batch, .channels = options.channels});

  runtime::Rng rng(7);
  const tensor::Tensor input = tensor::Tensor::uniform(
      tensor::Shape::bchw(options.batch, options.channels, options.resolution,
                          options.resolution),
      rng);

  std::vector<DriftRow> rows;
  rows.reserve(platforms.size());
  for (Platform platform : platforms) {
    const Accelerator accel = make_accelerator(platform);
    DriftRow row;
    row.platform = accel.spec().name;
    const CompileResult check = accel.compile_check(g);
    if (!check.ok) {
      row.error = check.error;
      rows.push_back(std::move(row));
      continue;
    }
    const RunResult result = accel.compile_and_run(g, {input});
    row.compiled = true;
    row.predicted_s = result.time.total_s();
    row.measured_s = result.host_seconds;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace aic::accel
