#pragma once

#include <cstddef>
#include <string>

namespace aic::graph {

/// Operator vocabulary of the static computation graphs.
///
/// The split into categories mirrors the paper's §3.1 portability
/// analysis: *arithmetic* and *movement* ops exist in every accelerator's
/// PyTorch frontend; *indexed* ops (gather/scatter) exist only on the
/// IPU; *bitwise* ops — the backbone of variable-length encoders — exist
/// on none of them, which is what forces the DCT+Chop design.
enum class OpKind {
  kInput,
  kConstant,
  kMatMul,
  kAdd,
  kMul,
  kRelu,
  kReshape,
  kTranspose,
  kGather,
  kScatter,
  kQuantize,    // round(x / scale)
  kDequantize,  // x * scale
  kBitShiftLeft,
  kBitShiftRight,
  kBitAnd,
  kBitOr,
  kBitNot,
};

enum class OpCategory {
  kArithmetic,
  kMovement,
  kIndexed,
  kBitwise,
};

/// Human-readable name ("matmul", "bit_shift_left", ...).
std::string op_name(OpKind kind);

/// Same names as op_name but as static storage — usable as a trace span
/// name (spans keep the pointer, never a copy).
const char* op_cname(OpKind kind);

/// Number of OpKind enumerators (dense, starting at 0) — sizes per-op
/// accounting tables.
inline constexpr std::size_t kOpKindCount =
    static_cast<std::size_t>(OpKind::kBitNot) + 1;

/// Portability category of the op.
OpCategory op_category(OpKind kind);

}  // namespace aic::graph
