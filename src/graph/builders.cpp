#include "graph/builders.hpp"

#include "core/chop.hpp"
#include "core/zigzag.hpp"
#include "tensor/shape.hpp"

namespace aic::graph {

using tensor::Shape;

namespace {

struct ChopOperators {
  tensor::Tensor lhs;  // (CF·H/b) × H
  tensor::Tensor rhs;  // W × (CF·W/b)
};

ChopOperators make_operators(const core::DctChopConfig& c) {
  return {core::make_lhs(c.height, c.cf, c.block),
          core::make_rhs(c.width, c.cf, c.block)};
}

}  // namespace

Graph build_compress_graph(const core::DctChopConfig& config,
                           const BatchSpec& spec) {
  const ChopOperators ops = make_operators(config);
  const std::size_t planes = spec.batch * spec.channels;
  const std::size_t ch = config.cf * config.height / config.block;
  const std::size_t cw = config.cf * config.width / config.block;

  Graph g;
  const NodeId in = g.input(
      Shape::bchw(spec.batch, spec.channels, config.height, config.width));
  const NodeId flat =
      g.reshape(in, Shape({planes, config.height, config.width}));
  const NodeId lhs = g.constant(ops.lhs);
  const NodeId rhs = g.constant(ops.rhs);
  // Y = LHS · (A · RHS)  — torch.matmul(LHS, torch.matmul(A, RHS)).
  const NodeId mid = g.matmul(flat, rhs);
  const NodeId packed = g.matmul(lhs, mid);
  const NodeId out =
      g.reshape(packed, Shape::bchw(spec.batch, spec.channels, ch, cw));
  g.mark_output(out);
  return g;
}

Graph build_decompress_graph(const core::DctChopConfig& config,
                             const BatchSpec& spec) {
  const std::size_t planes = spec.batch * spec.channels;
  const std::size_t ch = config.cf * config.height / config.block;
  const std::size_t cw = config.cf * config.width / config.block;

  Graph g;
  const NodeId in = g.input(Shape::bchw(spec.batch, spec.channels, ch, cw));
  const NodeId flat = g.reshape(in, Shape({planes, ch, cw}));
  // A' = RHS · (Y · LHS)  — torch.matmul(RHS, torch.matmul(Y, LHS)).
  const NodeId lhs = g.constant(core::make_lhs(config.width, config.cf,
                                               config.block));
  const NodeId rhs = g.constant(core::make_rhs(config.height, config.cf,
                                               config.block));
  const NodeId mid = g.matmul(flat, lhs);
  const NodeId restored = g.matmul(rhs, mid);
  const NodeId out = g.reshape(
      restored,
      Shape::bchw(spec.batch, spec.channels, config.height, config.width));
  g.mark_output(out);
  return g;
}

namespace {

// Gather/scatter index table over a chopped plane, flattened row-major.
std::vector<std::size_t> plane_triangle_indices(
    const core::DctChopConfig& c) {
  const std::size_t blocks_h = c.height / c.block;
  const std::size_t blocks_w = c.width / c.block;
  const std::size_t cw = c.cf * blocks_w;
  const std::vector<std::size_t> offsets = core::triangle_indices(c.cf, cw);
  std::vector<std::size_t> indices;
  indices.reserve(blocks_h * blocks_w * offsets.size());
  for (std::size_t bi = 0; bi < blocks_h; ++bi) {
    for (std::size_t bj = 0; bj < blocks_w; ++bj) {
      const std::size_t base = bi * c.cf * cw + bj * c.cf;
      for (std::size_t off : offsets) indices.push_back(base + off);
    }
  }
  return indices;
}

}  // namespace

Graph build_triangle_compress_graph(const core::DctChopConfig& config,
                                    const BatchSpec& spec) {
  const ChopOperators ops = make_operators(config);
  const std::size_t planes = spec.batch * spec.channels;
  const std::size_t ch = config.cf * config.height / config.block;
  const std::size_t cw = config.cf * config.width / config.block;

  Graph g;
  const NodeId in = g.input(
      Shape::bchw(spec.batch, spec.channels, config.height, config.width));
  const NodeId flat =
      g.reshape(in, Shape({planes, config.height, config.width}));
  const NodeId mid = g.matmul(flat, g.constant(ops.rhs));
  const NodeId packed = g.matmul(g.constant(ops.lhs), mid);
  // torch.gather with compile-time triangle indices (§3.5.2).
  const NodeId rows = g.reshape(packed, Shape({planes, 1, ch * cw}));
  const NodeId gathered = g.gather(rows, plane_triangle_indices(config));
  g.mark_output(gathered);
  return g;
}

Graph build_triangle_decompress_graph(const core::DctChopConfig& config,
                                      const BatchSpec& spec) {
  const std::size_t planes = spec.batch * spec.channels;
  const std::size_t ch = config.cf * config.height / config.block;
  const std::size_t cw = config.cf * config.width / config.block;
  const std::vector<std::size_t> indices = plane_triangle_indices(config);

  Graph g;
  const NodeId in = g.input(Shape({planes, 1, indices.size()}));
  // torch.scatter back into the chopped layout, then Eq. 6.
  const NodeId scattered = g.scatter(in, indices, ch * cw);
  const NodeId planes3 = g.reshape(scattered, Shape({planes, ch, cw}));
  const NodeId lhs = g.constant(core::make_lhs(config.width, config.cf,
                                               config.block));
  const NodeId rhs = g.constant(core::make_rhs(config.height, config.cf,
                                               config.block));
  const NodeId mid = g.matmul(planes3, lhs);
  const NodeId restored = g.matmul(rhs, mid);
  const NodeId out = g.reshape(
      restored,
      Shape::bchw(spec.batch, spec.channels, config.height, config.width));
  g.mark_output(out);
  return g;
}

Graph build_vle_encode_graph(std::size_t values) {
  Graph g;
  const NodeId in = g.input(Shape::vector(values));
  // Quantize, then pack two 16-bit fields per word: the minimal shape of
  // every RLE/Huffman emitter.
  const NodeId quantized = g.quantize(in, 1.0f / 64.0f);
  const NodeId mask = g.constant(
      tensor::Tensor::full(Shape::vector(values), 65535.0f));
  const NodeId low = g.bit_and(quantized, mask);
  const NodeId high = g.bit_shift_left(low, 16);
  const NodeId packed = g.bit_or(high, low);
  const NodeId trimmed = g.bit_shift_right(packed, 8);
  g.mark_output(trimmed);
  return g;
}

}  // namespace aic::graph
