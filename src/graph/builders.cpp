#include "graph/builders.hpp"

#include <memory>

#include "core/plan_cache.hpp"
#include "tensor/shape.hpp"

namespace aic::graph {

using tensor::Shape;

namespace {

std::shared_ptr<const core::DctChopPlan> resolve_plan(
    const core::DctChopConfig& c, const Context& ctx) {
  // Same PlanCache the session's codecs execute from: the graph constants
  // are emitted from the identical operand storage, and building a graph
  // for a shape the codec path already compiled costs no operand matmuls.
  // (This also honors config.transform, which the old direct
  // make_lhs/make_rhs calls silently ignored.)
  return core::resolve_dct_chop_plan(ctx, c.height, c.width, c.cf, c.block,
                                     c.transform);
}

}  // namespace

Graph build_compress_graph(const core::DctChopConfig& config,
                           const BatchSpec& spec, const Context& ctx) {
  const auto plan = resolve_plan(config, ctx);
  const std::size_t planes = spec.batch * spec.channels;
  const std::size_t ch = config.cf * config.height / config.block;
  const std::size_t cw = config.cf * config.width / config.block;

  Graph g;
  const NodeId in = g.input(
      Shape::bchw(spec.batch, spec.channels, config.height, config.width));
  const NodeId flat =
      g.reshape(in, Shape({planes, config.height, config.width}));
  const NodeId lhs = g.constant(plan->lhs_h());
  const NodeId rhs = g.constant(plan->rhs_w());
  // Y = LHS · (A · RHS)  — torch.matmul(LHS, torch.matmul(A, RHS)).
  const NodeId mid = g.matmul(flat, rhs);
  const NodeId packed = g.matmul(lhs, mid);
  const NodeId out =
      g.reshape(packed, Shape::bchw(spec.batch, spec.channels, ch, cw));
  g.mark_output(out);
  return g;
}

Graph build_decompress_graph(const core::DctChopConfig& config,
                             const BatchSpec& spec, const Context& ctx) {
  const auto plan = resolve_plan(config, ctx);
  const std::size_t planes = spec.batch * spec.channels;
  const std::size_t ch = config.cf * config.height / config.block;
  const std::size_t cw = config.cf * config.width / config.block;

  Graph g;
  const NodeId in = g.input(Shape::bchw(spec.batch, spec.channels, ch, cw));
  const NodeId flat = g.reshape(in, Shape({planes, ch, cw}));
  // A' = RHS · (Y · LHS)  — torch.matmul(RHS, torch.matmul(Y, LHS)).
  const NodeId lhs = g.constant(plan->lhs_w());
  const NodeId rhs = g.constant(plan->rhs_h());
  const NodeId mid = g.matmul(flat, lhs);
  const NodeId restored = g.matmul(rhs, mid);
  const NodeId out = g.reshape(
      restored,
      Shape::bchw(spec.batch, spec.channels, config.height, config.width));
  g.mark_output(out);
  return g;
}

namespace {

std::shared_ptr<const core::TrianglePlan> resolve_triangle(
    const core::DctChopConfig& c, const Context& ctx) {
  return core::resolve_triangle_plan(ctx, c.height, c.width, c.cf, c.block,
                                     c.transform);
}

}  // namespace

Graph build_triangle_compress_graph(const core::DctChopConfig& config,
                                    const BatchSpec& spec,
                                    const Context& ctx) {
  const auto plan = resolve_triangle(config, ctx);
  const core::DctChopPlan& chop = plan->inner_plan();
  const std::size_t planes = spec.batch * spec.channels;
  const std::size_t ch = config.cf * config.height / config.block;
  const std::size_t cw = config.cf * config.width / config.block;

  Graph g;
  const NodeId in = g.input(
      Shape::bchw(spec.batch, spec.channels, config.height, config.width));
  const NodeId flat =
      g.reshape(in, Shape({planes, config.height, config.width}));
  const NodeId mid = g.matmul(flat, g.constant(chop.rhs_w()));
  const NodeId packed = g.matmul(g.constant(chop.lhs_h()), mid);
  // torch.gather with compile-time triangle indices (§3.5.2), shared
  // with the codec executors through the TrianglePlan.
  const NodeId rows = g.reshape(packed, Shape({planes, 1, ch * cw}));
  const NodeId gathered = g.gather(rows, plan->plane_indices());
  g.mark_output(gathered);
  return g;
}

Graph build_triangle_decompress_graph(const core::DctChopConfig& config,
                                      const BatchSpec& spec,
                                      const Context& ctx) {
  const auto plan = resolve_triangle(config, ctx);
  const core::DctChopPlan& chop = plan->inner_plan();
  const std::size_t planes = spec.batch * spec.channels;
  const std::size_t ch = config.cf * config.height / config.block;
  const std::size_t cw = config.cf * config.width / config.block;
  const std::vector<std::size_t>& indices = plan->plane_indices();

  Graph g;
  const NodeId in = g.input(Shape({planes, 1, indices.size()}));
  // torch.scatter back into the chopped layout, then Eq. 6.
  const NodeId scattered = g.scatter(in, indices, ch * cw);
  const NodeId planes3 = g.reshape(scattered, Shape({planes, ch, cw}));
  const NodeId lhs = g.constant(chop.lhs_w());
  const NodeId rhs = g.constant(chop.rhs_h());
  const NodeId mid = g.matmul(planes3, lhs);
  const NodeId restored = g.matmul(rhs, mid);
  const NodeId out = g.reshape(
      restored,
      Shape::bchw(spec.batch, spec.channels, config.height, config.width));
  g.mark_output(out);
  return g;
}

Graph build_vle_encode_graph(std::size_t values) {
  Graph g;
  const NodeId in = g.input(Shape::vector(values));
  // Quantize, then pack two 16-bit fields per word: the minimal shape of
  // every RLE/Huffman emitter.
  const NodeId quantized = g.quantize(in, 1.0f / 64.0f);
  const NodeId mask = g.constant(
      tensor::Tensor::full(Shape::vector(values), 65535.0f));
  const NodeId low = g.bit_and(quantized, mask);
  const NodeId high = g.bit_shift_left(low, 16);
  const NodeId packed = g.bit_or(high, low);
  const NodeId trimmed = g.bit_shift_right(packed, 8);
  g.mark_output(trimmed);
  return g;
}

}  // namespace aic::graph
