#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace aic::graph {

using tensor::Shape;
using tensor::Tensor;

namespace {

// Shape of a (possibly plane-broadcast) matmul; throws on mismatch.
Shape matmul_shape(const Shape& a, const Shape& b) {
  if (a.rank() == 2 && b.rank() == 2) {
    if (a[1] != b[0]) {
      throw std::invalid_argument("graph matmul: inner dims differ " +
                                  a.to_string() + " x " + b.to_string());
    }
    return Shape::matrix(a[0], b[1]);
  }
  if (a.rank() == 3 && b.rank() == 2) {
    if (a[2] != b[0]) {
      throw std::invalid_argument("graph matmul: inner dims differ " +
                                  a.to_string() + " x " + b.to_string());
    }
    return Shape({a[0], a[1], b[1]});
  }
  if (a.rank() == 2 && b.rank() == 3) {
    if (a[1] != b[1]) {
      throw std::invalid_argument("graph matmul: inner dims differ " +
                                  a.to_string() + " x " + b.to_string());
    }
    return Shape({b[0], a[0], b[2]});
  }
  throw std::invalid_argument("graph matmul: unsupported ranks " +
                              a.to_string() + " x " + b.to_string());
}

std::size_t plane_bytes(const Shape& s) {
  if (s.rank() < 2) return s.numel() * sizeof(float);
  return s[s.rank() - 1] * s[s.rank() - 2] * sizeof(float);
}

}  // namespace

NodeId Graph::add_node(Node node) {
  node.id = nodes_.size();
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

const Shape& Graph::shape_of(NodeId id) const { return nodes_.at(id).shape; }

NodeId Graph::input(Shape shape) {
  Node node;
  node.kind = OpKind::kInput;
  node.shape = std::move(shape);
  return add_node(std::move(node));
}

NodeId Graph::constant(Tensor value) {
  Node node;
  node.kind = OpKind::kConstant;
  node.shape = value.shape();
  node.constant = std::move(value);
  return add_node(std::move(node));
}

NodeId Graph::matmul(NodeId a, NodeId b) {
  Node node;
  node.kind = OpKind::kMatMul;
  node.inputs = {a, b};
  node.shape = matmul_shape(shape_of(a), shape_of(b));
  return add_node(std::move(node));
}

NodeId Graph::binary_elementwise(OpKind kind, NodeId a, NodeId b) {
  if (shape_of(a) != shape_of(b)) {
    throw std::invalid_argument("graph " + op_name(kind) +
                                ": shape mismatch " +
                                shape_of(a).to_string() + " vs " +
                                shape_of(b).to_string());
  }
  Node node;
  node.kind = kind;
  node.inputs = {a, b};
  node.shape = shape_of(a);
  return add_node(std::move(node));
}

NodeId Graph::unary_elementwise(OpKind kind, NodeId a) {
  Node node;
  node.kind = kind;
  node.inputs = {a};
  node.shape = shape_of(a);
  return add_node(std::move(node));
}

NodeId Graph::add(NodeId a, NodeId b) {
  return binary_elementwise(OpKind::kAdd, a, b);
}

NodeId Graph::mul(NodeId a, NodeId b) {
  return binary_elementwise(OpKind::kMul, a, b);
}

NodeId Graph::relu(NodeId a) { return unary_elementwise(OpKind::kRelu, a); }

NodeId Graph::reshape(NodeId a, Shape shape) {
  if (shape.numel() != shape_of(a).numel()) {
    throw std::invalid_argument("graph reshape: numel mismatch");
  }
  Node node;
  node.kind = OpKind::kReshape;
  node.inputs = {a};
  node.shape = std::move(shape);
  return add_node(std::move(node));
}

NodeId Graph::transpose(NodeId a) {
  const Shape& s = shape_of(a);
  Shape out;
  if (s.rank() == 2) {
    out = Shape::matrix(s[1], s[0]);
  } else if (s.rank() == 3) {
    out = Shape({s[0], s[2], s[1]});
  } else {
    throw std::invalid_argument("graph transpose: rank must be 2 or 3");
  }
  Node node;
  node.kind = OpKind::kTranspose;
  node.inputs = {a};
  node.shape = out;
  return add_node(std::move(node));
}

NodeId Graph::gather(NodeId a, std::vector<std::size_t> indices) {
  const Shape& s = shape_of(a);
  if (s.rank() == 0) {
    throw std::invalid_argument("graph gather: scalar input");
  }
  const std::size_t last = s[s.rank() - 1];
  for (std::size_t idx : indices) {
    if (idx >= last) {
      throw std::invalid_argument("graph gather: index out of range");
    }
  }
  Shape out;
  const std::size_t k = indices.size();
  switch (s.rank()) {
    case 1: out = Shape::vector(k); break;
    case 2: out = Shape::matrix(s[0], k); break;
    case 3: out = Shape({s[0], s[1], k}); break;
    default: out = Shape::bchw(s[0], s[1], s[2], k); break;
  }
  Node node;
  node.kind = OpKind::kGather;
  node.inputs = {a};
  node.shape = std::move(out);
  node.indices = std::move(indices);
  return add_node(std::move(node));
}

NodeId Graph::scatter(NodeId a, std::vector<std::size_t> indices,
                      std::size_t size) {
  const Shape& s = shape_of(a);
  if (s.rank() == 0) {
    throw std::invalid_argument("graph scatter: scalar input");
  }
  if (indices.size() != s[s.rank() - 1]) {
    throw std::invalid_argument(
        "graph scatter: index count must equal last-axis extent");
  }
  for (std::size_t idx : indices) {
    if (idx >= size) {
      throw std::invalid_argument("graph scatter: index out of range");
    }
  }
  Shape out;
  switch (s.rank()) {
    case 1: out = Shape::vector(size); break;
    case 2: out = Shape::matrix(s[0], size); break;
    case 3: out = Shape({s[0], s[1], size}); break;
    default: out = Shape::bchw(s[0], s[1], s[2], size); break;
  }
  Node node;
  node.kind = OpKind::kScatter;
  node.inputs = {a};
  node.shape = std::move(out);
  node.indices = std::move(indices);
  node.scatter_size = size;
  return add_node(std::move(node));
}

NodeId Graph::quantize(NodeId a, float scale) {
  NodeId id = unary_elementwise(OpKind::kQuantize, a);
  nodes_[id].scale = scale;
  return id;
}

NodeId Graph::dequantize(NodeId a, float scale) {
  NodeId id = unary_elementwise(OpKind::kDequantize, a);
  nodes_[id].scale = scale;
  return id;
}

NodeId Graph::bit_shift_left(NodeId a, std::uint32_t amount) {
  NodeId id = unary_elementwise(OpKind::kBitShiftLeft, a);
  nodes_[id].shift = amount;
  return id;
}

NodeId Graph::bit_shift_right(NodeId a, std::uint32_t amount) {
  NodeId id = unary_elementwise(OpKind::kBitShiftRight, a);
  nodes_[id].shift = amount;
  return id;
}

NodeId Graph::bit_and(NodeId a, NodeId b) {
  return binary_elementwise(OpKind::kBitAnd, a, b);
}

NodeId Graph::bit_or(NodeId a, NodeId b) {
  return binary_elementwise(OpKind::kBitOr, a, b);
}

NodeId Graph::bit_not(NodeId a) {
  return unary_elementwise(OpKind::kBitNot, a);
}

void Graph::mark_output(NodeId id) {
  if (id >= nodes_.size()) {
    throw std::invalid_argument("graph mark_output: unknown node");
  }
  outputs_.push_back(id);
}

std::vector<NodeId> Graph::input_ids() const {
  std::vector<NodeId> ids;
  for (const Node& node : nodes_) {
    if (node.kind == OpKind::kInput) ids.push_back(node.id);
  }
  return ids;
}

std::set<OpKind> Graph::ops_used() const {
  std::set<OpKind> kinds;
  for (const Node& node : nodes_) kinds.insert(node.kind);
  return kinds;
}

std::size_t Graph::static_flops() const {
  std::size_t flops = 0;
  for (const Node& node : nodes_) {
    switch (node.kind) {
      case OpKind::kMatMul: {
        const Shape& a = nodes_[node.inputs[0]].shape;
        const std::size_t k = a[a.rank() - 1];
        flops += 2 * node.shape.numel() * k;
        break;
      }
      case OpKind::kAdd:
      case OpKind::kMul:
      case OpKind::kRelu:
      case OpKind::kQuantize:
      case OpKind::kDequantize:
        flops += node.shape.numel();
        break;
      default:
        break;  // movement and bitwise ops: no floating-point work
    }
  }
  return flops;
}

std::size_t Graph::constant_bytes() const {
  std::size_t bytes = 0;
  for (const Node& node : nodes_) {
    if (node.kind == OpKind::kConstant) {
      bytes += node.shape.numel() * sizeof(float);
    }
  }
  return bytes;
}

std::size_t Graph::activation_bytes() const {
  std::size_t bytes = 0;
  for (const Node& node : nodes_) {
    // Reshapes alias their input; they cost no storage.
    if (node.kind == OpKind::kConstant || node.kind == OpKind::kReshape) {
      continue;
    }
    bytes += node.shape.numel() * sizeof(float);
  }
  return bytes;
}

std::size_t Graph::max_tensor_bytes() const {
  std::size_t best = 0;
  for (const Node& node : nodes_) {
    best = std::max(best, node.shape.numel() * sizeof(float));
  }
  return best;
}

std::size_t Graph::max_plane_bytes() const {
  std::size_t best = 0;
  for (const Node& node : nodes_) {
    best = std::max(best, plane_bytes(node.shape));
  }
  return best;
}

std::size_t Graph::max_matmul_dim() const {
  std::size_t best = 0;
  for (const Node& node : nodes_) {
    if (node.kind != OpKind::kMatMul) continue;
    for (NodeId in : node.inputs) {
      const Shape& s = nodes_[in].shape;
      best = std::max({best, s[s.rank() - 1], s[s.rank() - 2]});
    }
  }
  return best;
}

}  // namespace aic::graph
