#include "graph/op.hpp"

namespace aic::graph {

std::string op_name(OpKind kind) { return op_cname(kind); }

const char* op_cname(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "input";
    case OpKind::kConstant: return "constant";
    case OpKind::kMatMul: return "matmul";
    case OpKind::kAdd: return "add";
    case OpKind::kMul: return "mul";
    case OpKind::kRelu: return "relu";
    case OpKind::kReshape: return "reshape";
    case OpKind::kTranspose: return "transpose";
    case OpKind::kGather: return "gather";
    case OpKind::kScatter: return "scatter";
    case OpKind::kQuantize: return "quantize";
    case OpKind::kDequantize: return "dequantize";
    case OpKind::kBitShiftLeft: return "bit_shift_left";
    case OpKind::kBitShiftRight: return "bit_shift_right";
    case OpKind::kBitAnd: return "bit_and";
    case OpKind::kBitOr: return "bit_or";
    case OpKind::kBitNot: return "bit_not";
  }
  return "?";
}

OpCategory op_category(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
    case OpKind::kConstant:
    case OpKind::kReshape:
    case OpKind::kTranspose:
      return OpCategory::kMovement;
    case OpKind::kGather:
    case OpKind::kScatter:
      return OpCategory::kIndexed;
    case OpKind::kBitShiftLeft:
    case OpKind::kBitShiftRight:
    case OpKind::kBitAnd:
    case OpKind::kBitOr:
    case OpKind::kBitNot:
      return OpCategory::kBitwise;
    case OpKind::kMatMul:
    case OpKind::kAdd:
    case OpKind::kMul:
    case OpKind::kRelu:
    case OpKind::kQuantize:
    case OpKind::kDequantize:
      return OpCategory::kArithmetic;
  }
  return OpCategory::kArithmetic;
}

}  // namespace aic::graph
