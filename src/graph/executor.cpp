#include "graph/executor.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"
#include "runtime/timer.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace aic::graph {

using tensor::Shape;
using tensor::Tensor;

namespace {

// Flattens leading axes so [P.., m, k] becomes plane count + matrix dims.
struct PlaneView {
  std::size_t planes;
  std::size_t rows;
  std::size_t cols;
};

PlaneView plane_view(const Shape& s) {
  if (s.rank() < 2) throw std::logic_error("plane_view: rank < 2");
  std::size_t planes = 1;
  for (std::size_t axis = 0; axis + 2 < s.rank(); ++axis) planes *= s[axis];
  return {planes, s[s.rank() - 2], s[s.rank() - 1]};
}

Tensor eval_matmul(const Tensor& a, const Tensor& b, const Shape& out_shape) {
  Tensor out(out_shape);
  if (a.shape().rank() == 2 && b.shape().rank() == 2) {
    tensor::matmul_into(a, b, out);
    return out;
  }
  if (a.shape().rank() == 3 && b.shape().rank() == 2) {
    const PlaneView va = plane_view(a.shape());
    const std::size_t out_plane = va.rows * b.shape()[1];
    for (std::size_t p = 0; p < va.planes; ++p) {
      Tensor plane(Shape::matrix(va.rows, va.cols));
      std::copy(a.raw() + p * va.rows * va.cols,
                a.raw() + (p + 1) * va.rows * va.cols, plane.raw());
      Tensor res(Shape::matrix(va.rows, b.shape()[1]));
      tensor::matmul_into(plane, b, res);
      std::copy(res.raw(), res.raw() + out_plane, out.raw() + p * out_plane);
    }
    return out;
  }
  if (a.shape().rank() == 2 && b.shape().rank() == 3) {
    const PlaneView vb = plane_view(b.shape());
    const std::size_t out_plane = a.shape()[0] * vb.cols;
    for (std::size_t p = 0; p < vb.planes; ++p) {
      Tensor plane(Shape::matrix(vb.rows, vb.cols));
      std::copy(b.raw() + p * vb.rows * vb.cols,
                b.raw() + (p + 1) * vb.rows * vb.cols, plane.raw());
      Tensor res(Shape::matrix(a.shape()[0], vb.cols));
      tensor::matmul_into(a, plane, res);
      std::copy(res.raw(), res.raw() + out_plane, out.raw() + p * out_plane);
    }
    return out;
  }
  throw std::logic_error("eval_matmul: unsupported ranks");
}

// Bit ops operate on 24-bit unsigned integer values carried in floats —
// the widest integer domain fp32 represents exactly, so shifts and masks
// round-trip losslessly. Results are masked back into the domain.
constexpr std::uint32_t kBitDomainMask = 0x00ffffffu;

std::uint32_t as_bits(float v) {
  return static_cast<std::uint32_t>(std::llround(static_cast<double>(v))) &
         kBitDomainMask;
}

float from_bits(std::uint32_t u) {
  return static_cast<float>(u & kBitDomainMask);
}

std::size_t matmul_min_plane_bytes(const Shape& a, const Shape& b,
                                   const Shape& out) {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (const Shape* s : {&a, &b, &out}) {
    const PlaneView v = plane_view(*s);
    best = std::min(best, v.rows * v.cols * sizeof(float));
  }
  return best;
}

}  // namespace

std::vector<Tensor> Executor::run(const std::vector<Tensor>& inputs) {
  AIC_TRACE_SCOPE("graph.run");
  trace_ = ExecutionTrace{};
  op_timings_.fill(OpTiming{});
  trace_.min_matmul_out_bytes = std::numeric_limits<std::size_t>::max();
  trace_.min_matmul_plane_bytes = std::numeric_limits<std::size_t>::max();
  trace_.resident_bytes = graph_.constant_bytes() + graph_.activation_bytes();

  std::vector<Tensor> values(graph_.nodes().size());
  std::size_t next_input = 0;

  for (const Node& node : graph_.nodes()) {
    AIC_TRACE_SCOPE(op_cname(node.kind));
    runtime::Timer node_timer;
    ++trace_.node_evaluations;
    std::size_t read = 0;
    for (NodeId in : node.inputs) {
      read += values[in].size_bytes();
    }
    trace_.bytes_read += read;

    switch (node.kind) {
      case OpKind::kInput: {
        if (next_input >= inputs.size()) {
          throw std::invalid_argument("Executor: too few inputs");
        }
        const Tensor& bound = inputs[next_input++];
        if (bound.shape() != node.shape) {
          throw std::invalid_argument(
              "Executor: input shape mismatch, expected " +
              node.shape.to_string() + " got " + bound.shape().to_string());
        }
        values[node.id] = bound;
        trace_.input_bytes += bound.size_bytes();
        break;
      }
      case OpKind::kConstant:
        values[node.id] = *node.constant;
        break;
      case OpKind::kMatMul: {
        values[node.id] = eval_matmul(values[node.inputs[0]],
                                      values[node.inputs[1]], node.shape);
        ++trace_.matmul_count;
        const Shape& a = graph_.node(node.inputs[0]).shape;
        trace_.flops += 2 * node.shape.numel() * a[a.rank() - 1];
        trace_.min_matmul_out_bytes = std::min(
            trace_.min_matmul_out_bytes, node.shape.numel() * sizeof(float));
        trace_.matmul_plane_ops += plane_view(node.shape).planes;
        trace_.min_matmul_plane_bytes = std::min(
            trace_.min_matmul_plane_bytes,
            matmul_min_plane_bytes(graph_.node(node.inputs[0]).shape,
                                   graph_.node(node.inputs[1]).shape,
                                   node.shape));
        break;
      }
      case OpKind::kAdd:
        values[node.id] =
            tensor::add(values[node.inputs[0]], values[node.inputs[1]]);
        trace_.flops += node.shape.numel();
        break;
      case OpKind::kMul:
        values[node.id] =
            tensor::mul(values[node.inputs[0]], values[node.inputs[1]]);
        trace_.flops += node.shape.numel();
        break;
      case OpKind::kRelu:
        values[node.id] = tensor::map(
            values[node.inputs[0]], [](float x) { return x > 0 ? x : 0; });
        trace_.flops += node.shape.numel();
        break;
      case OpKind::kReshape:
        values[node.id] = values[node.inputs[0]].reshaped(node.shape);
        break;
      case OpKind::kTranspose: {
        const Tensor& in = values[node.inputs[0]];
        if (in.shape().rank() == 2) {
          values[node.id] = in.transposed();
        } else {
          const PlaneView v = plane_view(in.shape());
          Tensor out(node.shape);
          for (std::size_t p = 0; p < v.planes; ++p) {
            const float* src = in.raw() + p * v.rows * v.cols;
            float* dst = out.raw() + p * v.rows * v.cols;
            for (std::size_t r = 0; r < v.rows; ++r) {
              for (std::size_t c = 0; c < v.cols; ++c) {
                dst[c * v.rows + r] = src[r * v.cols + c];
              }
            }
          }
          values[node.id] = std::move(out);
        }
        break;
      }
      case OpKind::kGather: {
        const Tensor& in = values[node.inputs[0]];
        const std::size_t last = in.shape()[in.shape().rank() - 1];
        const std::size_t rows = in.numel() / last;
        Tensor out(node.shape);
        for (std::size_t r = 0; r < rows; ++r) {
          const float* src = in.raw() + r * last;
          float* dst = out.raw() + r * node.indices.size();
          for (std::size_t k = 0; k < node.indices.size(); ++k) {
            dst[k] = src[node.indices[k]];
          }
        }
        trace_.indexed_elements += rows * node.indices.size();
        values[node.id] = std::move(out);
        break;
      }
      case OpKind::kScatter: {
        const Tensor& in = values[node.inputs[0]];
        const std::size_t last = in.shape()[in.shape().rank() - 1];
        const std::size_t rows = in.numel() / last;
        Tensor out(node.shape);  // zero-filled
        for (std::size_t r = 0; r < rows; ++r) {
          const float* src = in.raw() + r * last;
          float* dst = out.raw() + r * node.scatter_size;
          for (std::size_t k = 0; k < node.indices.size(); ++k) {
            dst[node.indices[k]] = src[k];
          }
        }
        trace_.indexed_elements += rows * node.indices.size();
        values[node.id] = std::move(out);
        break;
      }
      case OpKind::kQuantize:
        values[node.id] =
            tensor::map(values[node.inputs[0]], [s = node.scale](float x) {
              return std::round(x / s);
            });
        trace_.flops += node.shape.numel();
        break;
      case OpKind::kDequantize:
        values[node.id] = tensor::map(
            values[node.inputs[0]],
            [s = node.scale](float x) { return x * s; });
        trace_.flops += node.shape.numel();
        break;
      case OpKind::kBitShiftLeft:
        values[node.id] = tensor::map(
            values[node.inputs[0]], [k = node.shift](float x) {
              return from_bits(as_bits(x) << k);
            });
        break;
      case OpKind::kBitShiftRight:
        values[node.id] = tensor::map(
            values[node.inputs[0]], [k = node.shift](float x) {
              return from_bits(as_bits(x) >> k);
            });
        break;
      case OpKind::kBitAnd: {
        const Tensor& a = values[node.inputs[0]];
        const Tensor& b = values[node.inputs[1]];
        Tensor out(node.shape);
        for (std::size_t i = 0; i < out.numel(); ++i) {
          out.at(i) = from_bits(as_bits(a.at(i)) & as_bits(b.at(i)));
        }
        values[node.id] = std::move(out);
        break;
      }
      case OpKind::kBitOr: {
        const Tensor& a = values[node.inputs[0]];
        const Tensor& b = values[node.inputs[1]];
        Tensor out(node.shape);
        for (std::size_t i = 0; i < out.numel(); ++i) {
          out.at(i) = from_bits(as_bits(a.at(i)) | as_bits(b.at(i)));
        }
        values[node.id] = std::move(out);
        break;
      }
      case OpKind::kBitNot: {
        const Tensor& a = values[node.inputs[0]];
        Tensor out(node.shape);
        for (std::size_t i = 0; i < out.numel(); ++i) {
          out.at(i) = from_bits(~as_bits(a.at(i)));
        }
        values[node.id] = std::move(out);
        break;
      }
    }
    trace_.bytes_written += node.shape.numel() * sizeof(float);
    OpTiming& timing = op_timings_[static_cast<std::size_t>(node.kind)];
    ++timing.calls;
    timing.nanos += node_timer.nanos();
  }

  if (trace_.min_matmul_out_bytes == std::numeric_limits<std::size_t>::max()) {
    trace_.min_matmul_out_bytes = 0;
  }
  if (trace_.min_matmul_plane_bytes ==
      std::numeric_limits<std::size_t>::max()) {
    trace_.min_matmul_plane_bytes = 0;
  }

  std::vector<Tensor> results;
  if (graph_.outputs().empty()) {
    for (auto& v : values) results.push_back(std::move(v));
  } else {
    for (NodeId id : graph_.outputs()) {
      trace_.output_bytes += values[id].size_bytes();
      results.push_back(values[id]);
    }
  }
  return results;
}

double Executor::host_seconds() const {
  std::uint64_t nanos = 0;
  for (const OpTiming& timing : op_timings_) nanos += timing.nanos;
  return static_cast<double>(nanos) / 1e9;
}

ExecutionTrace static_trace(const Graph& graph) {
  ExecutionTrace trace;
  trace.min_matmul_out_bytes = std::numeric_limits<std::size_t>::max();
  trace.min_matmul_plane_bytes = std::numeric_limits<std::size_t>::max();
  trace.resident_bytes = graph.constant_bytes() + graph.activation_bytes();

  for (const Node& node : graph.nodes()) {
    ++trace.node_evaluations;
    for (NodeId in : node.inputs) {
      trace.bytes_read += graph.node(in).shape.numel() * sizeof(float);
    }
    trace.bytes_written += node.shape.numel() * sizeof(float);

    switch (node.kind) {
      case OpKind::kInput:
        trace.input_bytes += node.shape.numel() * sizeof(float);
        break;
      case OpKind::kMatMul: {
        ++trace.matmul_count;
        const Shape& a = graph.node(node.inputs[0]).shape;
        trace.flops += 2 * node.shape.numel() * a[a.rank() - 1];
        trace.min_matmul_out_bytes = std::min(
            trace.min_matmul_out_bytes, node.shape.numel() * sizeof(float));
        trace.matmul_plane_ops += plane_view(node.shape).planes;
        trace.min_matmul_plane_bytes = std::min(
            trace.min_matmul_plane_bytes,
            matmul_min_plane_bytes(graph.node(node.inputs[0]).shape,
                                   graph.node(node.inputs[1]).shape,
                                   node.shape));
        break;
      }
      case OpKind::kAdd:
      case OpKind::kMul:
      case OpKind::kRelu:
      case OpKind::kQuantize:
      case OpKind::kDequantize:
        trace.flops += node.shape.numel();
        break;
      case OpKind::kGather:
      case OpKind::kScatter: {
        const Shape& in = graph.node(node.inputs[0]).shape;
        const std::size_t last = in[in.rank() - 1];
        trace.indexed_elements += (in.numel() / last) * node.indices.size();
        break;
      }
      default:
        break;
    }
  }
  for (NodeId id : graph.outputs()) {
    trace.output_bytes += graph.node(id).shape.numel() * sizeof(float);
  }
  if (trace.min_matmul_out_bytes == std::numeric_limits<std::size_t>::max()) {
    trace.min_matmul_out_bytes = 0;
  }
  if (trace.min_matmul_plane_bytes ==
      std::numeric_limits<std::size_t>::max()) {
    trace.min_matmul_plane_bytes = 0;
  }
  return trace;
}

}  // namespace aic::graph
