#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/op.hpp"
#include "tensor/tensor.hpp"

namespace aic::graph {

/// Accounting collected during one graph evaluation; the accelerator
/// cost models consume this instead of wall-clock time.
struct ExecutionTrace {
  std::size_t flops = 0;
  std::size_t bytes_read = 0;
  std::size_t bytes_written = 0;
  std::size_t node_evaluations = 0;
  std::size_t matmul_count = 0;
  /// Host→device traffic: all graph inputs.
  std::size_t input_bytes = 0;
  /// Device→host traffic: all marked outputs.
  std::size_t output_bytes = 0;
  /// Smallest matmul output tensor (bytes); small tiles trigger the
  /// SN30 small-tensor overhead of §4.2.2.
  std::size_t min_matmul_out_bytes = 0;
  /// Smallest single-plane (trailing 2-D) tensor touched by any matmul —
  /// operands or output — in bytes.
  std::size_t min_matmul_plane_bytes = 0;
  /// Total per-plane matrix products issued (batched matmuls count once
  /// per plane) — the unit the small-tensor overhead scales with.
  std::size_t matmul_plane_ops = 0;
  /// Elements moved by gather/scatter nodes. Indexed moves defeat the
  /// IPU's bulk exchange and are charged per element (§4.2.4: the SG
  /// variant is 1.5-2.7× slower than plain DCT+Chop).
  std::size_t indexed_elements = 0;
  /// Constants + materialized activations: the on-chip working set. As
  /// this approaches a platform's OCM, effective bandwidth degrades
  /// (tile spilling), which is why direct 512×512 on the IPU is no
  /// faster than s=2 partial serialization (Fig. 15 discussion).
  std::size_t resident_bytes = 0;

  friend bool operator==(const ExecutionTrace&,
                         const ExecutionTrace&) = default;
};

/// Host-measured wall time of one operator kind, accumulated over a
/// run(). Kept outside ExecutionTrace: the trace must stay a pure
/// function of static shapes (static_trace equality invariant), while
/// timings are measurement.
struct OpTiming {
  std::size_t calls = 0;
  std::uint64_t nanos = 0;
};

/// Reference executor: evaluates a Graph on the CPU in topological
/// (insertion) order. Functionally exact — the accelerator simulators
/// reuse it for the math and layer a cost model over the trace.
class Executor {
 public:
  /// Takes ownership of the graph (copy or move) so an Executor can never
  /// outlive its program — builders commonly return temporaries.
  explicit Executor(Graph graph) : graph_(std::move(graph)) {}

  /// Runs the graph. `inputs` are bound to kInput nodes in id order.
  /// Returns the marked outputs (all node values when none are marked).
  std::vector<tensor::Tensor> run(const std::vector<tensor::Tensor>& inputs);

  /// Trace of the most recent run().
  const ExecutionTrace& trace() const { return trace_; }

  /// Host wall time per operator kind for the most recent run(), indexed
  /// by static_cast<size_t>(OpKind).
  const std::array<OpTiming, kOpKindCount>& op_timings() const {
    return op_timings_;
  }

  /// Total host wall time of the most recent run(), seconds.
  double host_seconds() const;

  /// The owned program.
  const Graph& graph() const { return graph_; }

 private:
  Graph graph_;
  ExecutionTrace trace_;
  std::array<OpTiming, kOpKindCount> op_timings_{};
};

/// Computes the trace of one evaluation *without executing*: every field
/// is a pure function of the graph's static shapes. Exact equality with
/// Executor::trace() is a tested invariant; the accelerator simulators
/// use this to cost paper-scale problems that would be too slow to run
/// numerically on the host.
ExecutionTrace static_trace(const Graph& graph);

}  // namespace aic::graph
