#pragma once

#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "graph/op.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace aic::graph {

/// Index of a node within its graph.
using NodeId = std::size_t;

/// One operator instance. Shapes are inferred at insertion time — the
/// graph is *statically shaped*, the property every accelerator compiler
/// in the paper requires (§3.1 "Tensor Sizes").
struct Node {
  NodeId id = 0;
  OpKind kind = OpKind::kInput;
  std::vector<NodeId> inputs;
  tensor::Shape shape;  // output shape
  // Attributes (meaning depends on kind).
  std::optional<tensor::Tensor> constant;     // kConstant payload
  std::vector<std::size_t> indices;           // kGather / kScatter
  std::size_t scatter_size = 0;               // kScatter output extent
  float scale = 1.0f;                         // kQuantize / kDequantize
  std::uint32_t shift = 0;                    // bit shifts
};

/// A static-shape dataflow graph built through a fluent API:
///
///   Graph g;
///   auto x = g.input(Shape::bchw(8, 3, 32, 32));
///   auto y = g.matmul(g.constant(lhs), g.matmul(x, g.constant(rhs)));
///   g.mark_output(y);
///
/// MatMul broadcasting rule: a rank-3 operand [P, m, k] against a rank-2
/// [k, n] (either side) multiplies every plane by the shared matrix —
/// the exact form the DCT+Chop compressor lowers to.
class Graph {
 public:
  NodeId input(tensor::Shape shape);
  NodeId constant(tensor::Tensor value);
  NodeId matmul(NodeId a, NodeId b);
  NodeId add(NodeId a, NodeId b);
  NodeId mul(NodeId a, NodeId b);
  NodeId relu(NodeId a);
  NodeId reshape(NodeId a, tensor::Shape shape);
  /// Transposes the trailing two axes (rank 2 or 3).
  NodeId transpose(NodeId a);
  /// out[..., k] = in[..., indices[k]] over the flattened last axis.
  NodeId gather(NodeId a, std::vector<std::size_t> indices);
  /// out[..., indices[k]] = in[..., k]; untouched positions are zero.
  /// `size` is the flattened output extent.
  NodeId scatter(NodeId a, std::vector<std::size_t> indices,
                 std::size_t size);
  NodeId quantize(NodeId a, float scale);
  NodeId dequantize(NodeId a, float scale);
  NodeId bit_shift_left(NodeId a, std::uint32_t amount);
  NodeId bit_shift_right(NodeId a, std::uint32_t amount);
  NodeId bit_and(NodeId a, NodeId b);
  NodeId bit_or(NodeId a, NodeId b);
  NodeId bit_not(NodeId a);

  void mark_output(NodeId id);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  std::vector<NodeId> input_ids() const;

  /// Distinct operator kinds present (compile-time op audit).
  std::set<OpKind> ops_used() const;

  /// FLOPs of one forward evaluation, from shapes alone (2mnk per
  /// matmul plane, 1 per elementwise output element).
  std::size_t static_flops() const;

  /// Bytes of all kConstant payloads (the "weights" resident on-chip).
  std::size_t constant_bytes() const;

  /// Bytes of all non-constant node outputs — a conservative stand-in
  /// for the activation footprint a dataflow compiler materializes.
  std::size_t activation_bytes() const;

  /// Largest single tensor (bytes) flowing through the graph.
  std::size_t max_tensor_bytes() const;

  /// Largest trailing-2-D tile (bytes) of any tensor — the per-compute-
  /// unit working set proxy used by the SN30 PMU capacity check.
  std::size_t max_plane_bytes() const;

  /// Largest trailing matrix dimension of any matmul operand — checked
  /// against GroqChip's 320×320 MXM tile limit.
  std::size_t max_matmul_dim() const;

 private:
  NodeId add_node(Node node);
  NodeId binary_elementwise(OpKind kind, NodeId a, NodeId b);
  NodeId unary_elementwise(OpKind kind, NodeId a);
  const tensor::Shape& shape_of(NodeId id) const;

  std::vector<Node> nodes_;
  std::vector<NodeId> outputs_;
};

}  // namespace aic::graph
