#pragma once

#include <cstddef>

#include "core/dct_chop.hpp"
#include "graph/graph.hpp"

namespace aic::graph {

/// Batched problem description shared by the builders: `batch` samples of
/// `channels` planes at the codec's compiled resolution.
struct BatchSpec {
  std::size_t batch = 1;
  std::size_t channels = 1;
};

/// Lowers DCT+Chop compression (Eq. 4) to the graph IR:
///   input [B, C, H, W] -> reshape [B·C, H, W]
///   -> matmul(·, RHS) -> matmul(LHS, ·) -> reshape [B, C, H', W'].
/// Exactly two matmul nodes, as in the paper's PyTorch one-liner (§3.3).
/// The operand constants are resolved through `ctx`'s PlanCache, so graph
/// building shares compiled operands with that session's codec path.
Graph build_compress_graph(const core::DctChopConfig& config,
                           const BatchSpec& spec,
                           const Context& ctx = Context::process_default());

/// Lowers decompression (Eq. 6): the same operators with roles swapped.
Graph build_decompress_graph(const core::DctChopConfig& config,
                             const BatchSpec& spec,
                             const Context& ctx = Context::process_default());

/// Compression followed by the §3.5.2 triangle gather (IPU variant).
Graph build_triangle_compress_graph(
    const core::DctChopConfig& config, const BatchSpec& spec,
    const Context& ctx = Context::process_default());

/// Triangle scatter followed by decompression (IPU variant).
Graph build_triangle_decompress_graph(
    const core::DctChopConfig& config, const BatchSpec& spec,
    const Context& ctx = Context::process_default());

/// A representative variable-length-encoding fragment (quantize, bit
/// shifts, masks — the guts of RLE/Huffman stages). Exists to be *fed to
/// the platform compilers and rejected*: §3.1's portability audit.
Graph build_vle_encode_graph(std::size_t values);

}  // namespace aic::graph
