#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace aic::baseline {

/// Per-chunk entropy mode of the v4 archive container. The mode byte
/// leads every encoded chunk, so each chunk picks its cheapest coding
/// independently and decodes with no cross-chunk state — the property
/// that lets the archive pipeline fan chunks across the thread pool.
enum class ChunkEntropy : std::uint8_t {
  /// Chunk bytes stored verbatim: [0][plain bytes]. The default write
  /// mode — zero coding cost keeps 1-thread encode at v3 parity.
  kRaw = 0,
  /// Fixed-width bit packing: [1][u8 width][packed bits], width in
  /// [1, 8] covering the largest byte value (SIMD pack/unpack path).
  kPacked = 1,
  /// Canonical Huffman over bytes: [2][u16 table_count]
  /// [(u8 symbol, u8 length) * table_count][bit payload].
  kHuffman = 2,
  /// Encode-side only: evaluate raw/packed/huffman per chunk and keep
  /// the smallest (deterministic tie-break raw < packed < huffman).
  kAuto = 255,
};

/// Parses a CLI/profile spelling ("raw", "packed", "huffman", "auto").
/// Throws std::invalid_argument on anything else.
ChunkEntropy parse_chunk_entropy(const std::string& name);
const char* chunk_entropy_name(ChunkEntropy mode);

/// Encodes one chunk of plain bytes under `mode`. The result is a pure
/// function of (plain, mode) — no global state — which is what makes the
/// chunked archive bitwise-identical for every thread count.
std::string encode_chunk(std::string_view plain, ChunkEntropy mode);

/// Decodes one encoded chunk, whose plain size the caller knows from the
/// archive geometry, appending into `out` (resized by the caller).
/// Raises aic::io::CorruptStream on any malformed input. `plain_len`
/// must satisfy the expansion bound checked by
/// chunk_expansion_ok(encoded.size(), plain_len) — callers enforce it
/// before allocating.
void decode_chunk(std::string_view encoded, std::size_t plain_len,
                  char* out);

/// Decode-side DoS guard: every mode emits at least one bit per plain
/// byte (packed width >= 1, Huffman codes >= 1 bit), so a chunk can
/// expand at most 8x plus bounded framing. Rejecting encoded_len values
/// under this floor bounds the allocation a hostile chunk table can
/// request.
inline bool chunk_expansion_ok(std::size_t encoded_len,
                               std::size_t plain_len) {
  return plain_len <= 8 * encoded_len + 64;
}

}  // namespace aic::baseline
