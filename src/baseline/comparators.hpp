#pragma once

#include <memory>

#include "baseline/jpeg_codec.hpp"
#include "baseline/sz_like.hpp"
#include "core/codec.hpp"
#include "core/plan.hpp"

namespace aic::baseline {

/// core::Codec adapter over the SZ-style error-bounded codec, so the
/// comparator is addressable through core::CodecFactory ("sz:eb=0.001")
/// and usable wherever a CodecPtr is (trainer, eval, CLI).
///
/// SZ produces a variable-length bitstream that has no dense-tensor
/// packed form, so the adapter is honest about what it can represent:
/// compress() performs the full encode+decode round trip and returns the
/// *reconstruction* (same shape as the input); decompress() is a
/// pass-through. The achieved stream size is recorded in stats() — see
/// compression_ratio().
class SzComparatorCodec final : public core::Codec {
 public:
  explicit SzComparatorCodec(double error_bound,
                             Context ctx = Context::process_default());

  std::string name() const override;
  std::string spec() const override;
  /// Mean achieved ratio over everything compressed so far through this
  /// instance (from stats()); SZ is variable-rate, so there is no
  /// nominal a-priori ratio. 1.0 before the first compress().
  double compression_ratio() const override;
  tensor::Shape compressed_shape(const tensor::Shape& input) const override;
  tensor::Tensor compress(const tensor::Tensor& input) const override;
  tensor::Tensor decompress(const tensor::Tensor& packed,
                            const tensor::Shape& original) const override;

  double error_bound() const { return inner_.error_bound(); }

 private:
  SzLikeCodec inner_;
};

/// core::Codec adapter over the JPEG-style codec ("jpeg:q=75"). Same
/// reconstruction-passthrough contract as SzComparatorCodec; the
/// quality-scaled quantization table is a compile-time artifact shared
/// through the PlanCache.
class JpegComparatorCodec final : public core::Codec {
 public:
  explicit JpegComparatorCodec(int quality, bool chroma = false,
                               Context ctx = Context::process_default());

  std::string name() const override;
  std::string spec() const override;
  double compression_ratio() const override;
  tensor::Shape compressed_shape(const tensor::Shape& input) const override;
  tensor::Tensor compress(const tensor::Tensor& input) const override;
  tensor::Tensor decompress(const tensor::Tensor& packed,
                            const tensor::Shape& original) const override;

  int quality() const { return quality_; }
  bool chroma() const { return chroma_; }

 private:
  int quality_;
  bool chroma_;
  std::shared_ptr<const core::CodecPlan> plan_;  // holds the quant table
  const JpegLikeCodec* inner_;                   // owned by plan_
};

/// Registers the baseline comparators (zfp, sz, jpeg, colorquant) with
/// core::CodecFactory::global(). Idempotent; call before resolving a
/// baseline spec. Registration is explicit because static-library
/// registrar objects are dropped by the linker unless referenced.
void register_comparator_codecs();

}  // namespace aic::baseline
