#include "baseline/bitstream.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define AIC_BITSTREAM_X86 1
#else
#define AIC_BITSTREAM_X86 0
#endif

#include "io/error.hpp"
#include "runtime/cpu_features.hpp"

namespace aic::baseline {

void BitWriter::write_bits(std::uint32_t value, std::size_t count) {
  if (count > 32) throw std::invalid_argument("write_bits: count > 32");
  if (count < 32) value &= (std::uint32_t{1} << count) - 1;
  // acc_bits_ < 8 on entry, so the shifted accumulator holds at most 39
  // live bits. Bits above acc_bits_ are stale (never cleared); every
  // extraction below masks to the byte it wants, so they are harmless.
  acc_ = (acc_ << count) | value;
  acc_bits_ += count;
  bit_count_ += count;
  while (acc_bits_ >= 8) {
    append_byte(static_cast<std::uint8_t>(acc_ >> (acc_bits_ - 8)));
    acc_bits_ -= 8;
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (acc_bits_ > 0) {
    append_byte(static_cast<std::uint8_t>(acc_ << (8 - acc_bits_)));
    acc_ = 0;
    acc_bits_ = 0;
  }
  return std::move(bytes_);
}

std::uint32_t BitReader::peek_bits(std::size_t count) const {
  if (count > 32) throw std::invalid_argument("peek_bits: count > 32");
  if (count == 0) return 0;
  const std::size_t byte0 = position_ / 8;
  const std::size_t offset = position_ % 8;
  const std::size_t need = (offset + count + 7) / 8;  // <= 5
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < need; ++i) {
    const std::uint8_t byte =
        byte0 + i < bytes_.size() ? bytes_[byte0 + i] : 0;
    acc = (acc << 8) | byte;
  }
  const std::size_t shift = need * 8 - offset - count;
  return static_cast<std::uint32_t>((acc >> shift) &
                                    ((std::uint64_t{1} << count) - 1));
}

void BitReader::skip_bits(std::size_t count) {
  if (count > bits_remaining()) {
    io::raise_corrupt(io::CorruptKind::kTruncated,
                      "BitReader: skip past end of stream (bit " +
                          std::to_string(position_) + " + " +
                          std::to_string(count) + " of " +
                          std::to_string(bytes_.size() * 8) + ")");
  }
  position_ += count;
}

std::uint32_t BitReader::read_bits(std::size_t count) {
  if (count > 32) throw std::invalid_argument("read_bits: count > 32");
  if (count > bits_remaining()) {
    io::raise_corrupt(io::CorruptKind::kTruncated,
                      "BitReader: read past end of stream (bit " +
                          std::to_string(position_) + " of " +
                          std::to_string(bytes_.size() * 8) + ")");
  }
  const std::uint32_t value = peek_bits(count);
  position_ += count;
  return value;
}

bool BitReader::read_bit() {
  // Division form: `position_ >= size * 8` can wrap for buffers near
  // SIZE_MAX/8 bytes; `position_ / 8 >= size` cannot.
  const std::size_t byte = position_ / 8;
  if (byte >= bytes_.size()) {
    io::raise_corrupt(io::CorruptKind::kTruncated,
                      "BitReader: read past end of stream (bit " +
                          std::to_string(position_) + " of " +
                          std::to_string(bytes_.size() * 8) + ")");
  }
  const std::size_t offset = 7 - position_ % 8;
  ++position_;
  return (bytes_[byte] >> offset) & 1u;
}

namespace {

void require_width(std::size_t width) {
  if (width == 0 || width > 8) {
    throw std::invalid_argument("fixed-width pack: width must be in [1, 8]");
  }
}

/// Scalar pack: 8 values accumulate into one 8*width-bit word, emitted
/// big-endian — byte-identical to write_bits(values[i], width) in order.
std::size_t pack_scalar(const std::uint8_t* values, std::size_t count,
                        std::size_t width, std::uint8_t* out) {
  const std::uint8_t mask =
      static_cast<std::uint8_t>((std::uint32_t{1} << width) - 1);
  std::size_t o = 0;
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    std::uint64_t acc = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      acc = (acc << width) | (values[i + j] & mask);
    }
    for (std::size_t b = width; b-- > 0;) {
      out[o++] = static_cast<std::uint8_t>(acc >> (b * 8));
    }
  }
  std::uint64_t acc = 0;
  std::size_t bits = 0;
  for (; i < count; ++i) {
    acc = (acc << width) | (values[i] & mask);
    bits += width;
    while (bits >= 8) {
      out[o++] = static_cast<std::uint8_t>(acc >> (bits - 8));
      bits -= 8;
    }
  }
  if (bits > 0) out[o++] = static_cast<std::uint8_t>(acc << (8 - bits));
  return o;
}

void unpack_scalar(const std::uint8_t* in, std::size_t in_bytes,
                   std::size_t width, std::uint8_t* out, std::size_t count) {
  const std::uint32_t mask = (std::uint32_t{1} << width) - 1;
  std::size_t bit = 0;
  for (std::size_t i = 0; i < count; ++i, bit += width) {
    const std::size_t byte = bit >> 3;
    const std::size_t r = bit & 7;
    // r + width <= 15, so a 16-bit window always covers the value.
    const std::uint32_t window =
        (static_cast<std::uint32_t>(in[byte]) << 8) |
        (byte + 1 < in_bytes ? in[byte + 1] : 0);
    out[i] = static_cast<std::uint8_t>((window >> (16 - r - width)) & mask);
  }
}

#if AIC_BITSTREAM_X86

/// AVX2 unpack: eight values per iteration. Each lane gathers the 32-bit
/// big-endian window containing its value (bit offset i*width), so one
/// gather + byte-reverse shuffle + variable shift extracts eight
/// arbitrarily aligned fields at once — the bit-extraction pattern no
/// scalar loop pipeline can match for sub-byte widths.
__attribute__((target("avx2"))) void unpack_avx2(const std::uint8_t* in,
                                                 std::size_t in_bytes,
                                                 std::size_t width,
                                                 std::uint8_t* out,
                                                 std::size_t count) {
  // A lane loads 4 bytes at (bit/8); lanes past in_bytes-4 would read out
  // of bounds, so the vector loop stops at the last fully-covered value.
  std::size_t safe = 0;
  if (in_bytes >= 4) {
    safe = std::min(count, ((in_bytes - 4) * 8 + 7) / width + 1);
  }
  const __m256i lane_bits = _mm256_setr_epi32(
      0, static_cast<int>(width), static_cast<int>(2 * width),
      static_cast<int>(3 * width), static_cast<int>(4 * width),
      static_cast<int>(5 * width), static_cast<int>(6 * width),
      static_cast<int>(7 * width));
  const __m256i seven = _mm256_set1_epi32(7);
  const __m256i top = _mm256_set1_epi32(32 - static_cast<int>(width));
  const __m256i mask =
      _mm256_set1_epi32(static_cast<int>((std::uint32_t{1} << width) - 1));
  // Per-32-bit-lane byte reverse (little-endian load -> big-endian word).
  const __m256i bswap = _mm256_setr_epi8(
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,  //
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);

  std::size_t i = 0;
  alignas(32) std::uint32_t tmp[8];
  for (; i + 8 <= safe; i += 8) {
    const __m256i base = _mm256_set1_epi32(static_cast<int>(i * width));
    const __m256i bit = _mm256_add_epi32(base, lane_bits);
    const __m256i byte = _mm256_srli_epi32(bit, 3);
    const __m256i r = _mm256_and_si256(bit, seven);
    const __m256i window = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(in), byte, 1);
    const __m256i be = _mm256_shuffle_epi8(window, bswap);
    const __m256i shift = _mm256_sub_epi32(top, r);
    const __m256i value =
        _mm256_and_si256(_mm256_srlv_epi32(be, shift), mask);
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), value);
    for (std::size_t lane = 0; lane < 8; ++lane) {
      out[i + lane] = static_cast<std::uint8_t>(tmp[lane]);
    }
  }
  if (i < count) {
    // i is a multiple of 8, so i*width bits is a whole number of bytes
    // and the scalar tail starts byte-aligned at the adjusted base.
    unpack_scalar(in + (i * width) / 8, in_bytes - (i * width) / 8, width,
                  out + i, count - i);
  }
}

/// AVX2 nibble pack (width 4): 32 values fold into 16 bytes with one
/// multiply-add (hi*16 + lo) and one saturating pack per vector.
__attribute__((target("avx2"))) std::size_t pack4_avx2(
    const std::uint8_t* values, std::size_t count, std::uint8_t* out) {
  const __m256i weights = _mm256_set1_epi16(0x0110);  // bytes {16, 1}
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  std::size_t o = 0;
  std::size_t i = 0;
  for (; i + 32 <= count; i += 32) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),
        low_mask);
    // Each i16 lane becomes values[2j]*16 + values[2j+1] <= 255.
    const __m256i packed16 = _mm256_maddubs_epi16(v, weights);
    const __m256i packed8 = _mm256_packus_epi16(packed16, packed16);
    // packus interleaves 128-bit halves; collect the two valid qwords.
    const __m128i lo = _mm256_castsi256_si128(packed8);
    const __m128i hi = _mm256_extracti128_si256(packed8, 1);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + o), lo);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + o + 8), hi);
    o += 16;
  }
  return o + pack_scalar(values + i, count - i, 4, out + o);
}

#endif  // AIC_BITSTREAM_X86

}  // namespace

std::size_t pack_fixed_width(const std::uint8_t* values, std::size_t count,
                             std::size_t width, std::uint8_t* out) {
  require_width(width);
  if (count == 0) return 0;
  if (width == 8) {  // degenerate: packing is the identity
    std::copy(values, values + count, out);
    return count;
  }
#if AIC_BITSTREAM_X86
  if (runtime::kernel_backend() == runtime::KernelBackend::kAvx2 &&
      width == 4) {
    return pack4_avx2(values, count, out);
  }
#endif
  return pack_scalar(values, count, width, out);
}

void unpack_fixed_width(const std::uint8_t* in, std::size_t in_bytes,
                        std::size_t width, std::uint8_t* out,
                        std::size_t count) {
  require_width(width);
  if (count == 0) return;
  if (packed_bytes(count, width) > in_bytes) {
    io::raise_corrupt(io::CorruptKind::kTruncated,
                      "unpack_fixed_width: " + std::to_string(count) +
                          " values of " + std::to_string(width) +
                          " bits need " +
                          std::to_string(packed_bytes(count, width)) +
                          " bytes, have " + std::to_string(in_bytes));
  }
  if (width == 8) {
    std::copy(in, in + count, out);
    return;
  }
#if AIC_BITSTREAM_X86
  if (runtime::kernel_backend() == runtime::KernelBackend::kAvx2) {
    unpack_avx2(in, in_bytes, width, out, count);
    return;
  }
#endif
  unpack_scalar(in, in_bytes, width, out, count);
}

}  // namespace aic::baseline
