#include "baseline/bitstream.hpp"

#include <stdexcept>

#include "io/error.hpp"

namespace aic::baseline {

void BitWriter::write_bits(std::uint32_t value, std::size_t count) {
  if (count > 32) throw std::invalid_argument("write_bits: count > 32");
  for (std::size_t i = count; i-- > 0;) {
    const std::uint8_t bit = static_cast<std::uint8_t>((value >> i) & 1u);
    current_ = static_cast<std::uint8_t>((current_ << 1) | bit);
    if (++used_ == 8) {
      bytes_.push_back(current_);
      current_ = 0;
      used_ = 0;
    }
  }
  bit_count_ += count;
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (used_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(current_ << (8 - used_)));
    current_ = 0;
    used_ = 0;
  }
  return std::move(bytes_);
}

std::uint32_t BitReader::read_bits(std::size_t count) {
  if (count > 32) throw std::invalid_argument("read_bits: count > 32");
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < count; ++i) {
    value = (value << 1) | static_cast<std::uint32_t>(read_bit());
  }
  return value;
}

bool BitReader::read_bit() {
  // Division form: `position_ >= size * 8` can wrap for buffers near
  // SIZE_MAX/8 bytes; `position_ / 8 >= size` cannot.
  const std::size_t byte = position_ / 8;
  if (byte >= bytes_.size()) {
    io::raise_corrupt(io::CorruptKind::kTruncated,
                      "BitReader: read past end of stream (bit " +
                          std::to_string(position_) + " of " +
                          std::to_string(bytes_.size() * 8) + ")");
  }
  const std::size_t offset = 7 - position_ % 8;
  ++position_;
  return (bytes_[byte] >> offset) & 1u;
}

}  // namespace aic::baseline
