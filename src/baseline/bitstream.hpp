#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aic::baseline {

/// Append-only bit buffer (MSB-first within each byte).
///
/// BitWriter/BitReader are the primitive the paper's §3.1 operator audit
/// is about: every variable-length encoding below (RLE symbols, Huffman
/// codes) bottoms out in the shift/mask operations these classes perform —
/// operations PyTorch does not expose on most AI accelerators, which is
/// why DCT+Chop deliberately avoids this entire layer.
class BitWriter {
 public:
  /// Appends the `count` low bits of `value`, most significant first.
  void write_bits(std::uint32_t value, std::size_t count);

  /// Pads the final partial byte with zeros and returns the buffer.
  std::vector<std::uint8_t> finish();

  /// Bits written so far.
  std::size_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  std::size_t used_ = 0;  // bits used in `current_`
  std::size_t bit_count_ = 0;
};

/// MSB-first reader over a byte buffer produced by BitWriter.
class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  /// Reads `count` bits (<= 32). Throws aic::io::CorruptStream
  /// (kTruncated) past the end of the stream.
  std::uint32_t read_bits(std::size_t count);

  /// Reads a single bit.
  bool read_bit();

  std::size_t bits_remaining() const {
    const std::size_t whole = bytes_.size() - position_ / 8;
    return whole == 0 ? 0 : whole * 8 - position_ % 8;
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t position_ = 0;
};

}  // namespace aic::baseline
