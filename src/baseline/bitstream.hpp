#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aic::baseline {

/// Append-only bit buffer (MSB-first within each byte).
///
/// BitWriter/BitReader are the primitive the paper's §3.1 operator audit
/// is about: every variable-length encoding below (RLE symbols, Huffman
/// codes) bottoms out in the shift/mask operations these classes perform —
/// operations PyTorch does not expose on most AI accelerators, which is
/// why DCT+Chop deliberately avoids this entire layer.
///
/// Internally the writer runs on a 64-bit accumulator and emits whole
/// bytes, but the produced byte stream is bit-for-bit identical to the
/// historical bit-at-a-time implementation.
class BitWriter {
 public:
  /// Appends the `count` low bits of `value`, most significant first.
  void write_bits(std::uint32_t value, std::size_t count);

  /// Pads the final partial byte with zeros and returns the buffer.
  std::vector<std::uint8_t> finish();

  /// Bits written so far.
  std::size_t bit_count() const { return bit_count_; }

  /// Pre-sizes the byte buffer for `bytes` total output bytes so the
  /// encode hot loop never reallocates (see realloc_count()).
  void reserve(std::size_t bytes) { bytes_.reserve(bytes); }

  /// Number of byte-buffer growths since construction. An encoder that
  /// reserve()s from its exact size accounting must keep this at zero —
  /// the pipeline tests assert it.
  std::size_t realloc_count() const { return reallocs_; }

 private:
  void append_byte(std::uint8_t byte) {
    if (bytes_.size() == bytes_.capacity()) ++reallocs_;
    bytes_.push_back(byte);
  }

  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;      // low `acc_bits_` bits are pending output
  std::size_t acc_bits_ = 0;   // always < 8 between calls
  std::size_t bit_count_ = 0;
  std::size_t reallocs_ = 0;
};

/// MSB-first reader over a byte buffer produced by BitWriter.
class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  /// Reads `count` bits (<= 32). Throws aic::io::CorruptStream
  /// (kTruncated) past the end of the stream.
  std::uint32_t read_bits(std::size_t count);

  /// Reads a single bit.
  bool read_bit();

  /// Returns the next `count` bits (<= 32) without consuming them.
  /// Bits past the end of the stream read as zero — the caller must
  /// bound how many it trusts via bits_remaining() (the Huffman LUT
  /// decode does exactly that).
  std::uint32_t peek_bits(std::size_t count) const;

  /// Consumes `count` bits. Throws aic::io::CorruptStream (kTruncated)
  /// when fewer remain.
  void skip_bits(std::size_t count);

  std::size_t bits_remaining() const {
    const std::size_t whole = bytes_.size() - position_ / 8;
    return whole == 0 ? 0 : whole * 8 - position_ % 8;
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t position_ = 0;
};

/// Fixed-width bit packing: packs `count` byte values of `width` bits
/// (1..8) each into ceil(count*width/8) bytes, MSB-first — the exact
/// stream a BitWriter fed write_bits(values[i], width) would produce.
/// Dispatches to an AVX2 kernel when runtime::kernel_backend() allows.
/// `out` must hold packed_bytes(count, width) bytes.
std::size_t pack_fixed_width(const std::uint8_t* values, std::size_t count,
                             std::size_t width, std::uint8_t* out);

/// Inverse of pack_fixed_width: expands `count` values of `width` bits
/// from `in` (`in_bytes` long) into `out`. Throws aic::io::CorruptStream
/// (kTruncated) when `in` holds fewer than count*width bits.
void unpack_fixed_width(const std::uint8_t* in, std::size_t in_bytes,
                        std::size_t width, std::uint8_t* out,
                        std::size_t count);

/// ceil(count * width / 8), the packed size both functions agree on.
inline std::size_t packed_bytes(std::size_t count, std::size_t width) {
  return (count * width + 7) / 8;
}

}  // namespace aic::baseline
