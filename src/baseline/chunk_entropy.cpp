#include "baseline/chunk_entropy.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

#include "baseline/bitstream.hpp"
#include "baseline/huffman.hpp"
#include "io/error.hpp"
#include "obs/pipeline.hpp"

namespace aic::baseline {

using io::CorruptKind;
using io::raise_corrupt;

namespace {

/// Per-thread staging reused across chunks (the pipeline encodes many
/// chunks per thread; reallocating these per call dominated profiles).
std::vector<std::uint16_t>& symbol_scratch() {
  thread_local std::vector<std::uint16_t> scratch;
  return scratch;
}

std::vector<std::uint8_t>& byte_scratch() {
  thread_local std::vector<std::uint8_t> scratch;
  return scratch;
}

std::size_t packed_width_for(std::string_view plain) {
  std::uint8_t max_value = 0;
  for (char c : plain) {
    max_value = std::max(max_value, static_cast<std::uint8_t>(c));
  }
  std::size_t width = 1;
  while ((std::size_t{1} << width) <= max_value) ++width;
  return width;  // in [1, 8]
}

std::string encode_raw(std::string_view plain) {
  std::string out;
  out.reserve(1 + plain.size());
  out.push_back(static_cast<char>(ChunkEntropy::kRaw));
  out.append(plain.data(), plain.size());
  return out;
}

std::string encode_packed(std::string_view plain) {
  const std::size_t width = packed_width_for(plain);
  std::string out;
  out.resize(2 + packed_bytes(plain.size(), width));
  out[0] = static_cast<char>(ChunkEntropy::kPacked);
  out[1] = static_cast<char>(width);
  const std::size_t written = pack_fixed_width(
      reinterpret_cast<const std::uint8_t*>(plain.data()), plain.size(),
      width, reinterpret_cast<std::uint8_t*>(out.data() + 2));
  out.resize(2 + written);
  return out;
}

/// Builds the per-chunk byte histogram coder while tallying the byte
/// frequencies into `freq`. Separated so the auto mode can cost the
/// table + payload without encoding twice.
HuffmanCoder make_huffman(std::string_view plain,
                          std::array<std::size_t, 256>& freq) {
  freq.fill(0);
  std::vector<std::uint16_t>& symbols = symbol_scratch();
  symbols.resize(plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    const std::uint8_t byte = static_cast<std::uint8_t>(plain[i]);
    symbols[i] = byte;
    freq[byte] += 1;
  }
  return HuffmanCoder(symbols);
}

/// Exact encoded payload bits from the byte histogram: sum of
/// freq[s] * len[s] over the (≤ 256-entry) code table. This is the exact
/// worst case the BitWriter must hold, computed in O(table) instead of
/// the historical O(chunk) per-symbol accounting pass — high-entropy
/// chunks no longer pay a second full scan just to size the buffer.
std::size_t exact_payload_bits(const HuffmanCoder& coder,
                               const std::array<std::size_t, 256>& freq) {
  std::size_t bits = 0;
  for (const auto& [symbol, length] : coder.lengths()) {
    bits += freq[symbol] * length;
  }
  return bits;
}

std::size_t huffman_encoded_size(const HuffmanCoder& coder,
                                 std::size_t payload_bits) {
  return 1 + 2 + 2 * coder.lengths().size() + (payload_bits + 7) / 8;
}

/// Encodes the symbols staged in symbol_scratch() by make_huffman.
std::string encode_huffman(const HuffmanCoder& coder,
                           std::size_t payload_bits) {
  std::string out;
  out.reserve(huffman_encoded_size(coder, payload_bits));
  out.push_back(static_cast<char>(ChunkEntropy::kHuffman));
  const std::size_t table_count = coder.lengths().size();
  out.push_back(static_cast<char>(table_count & 0xff));
  out.push_back(static_cast<char>((table_count >> 8) & 0xff));
  for (const auto& [symbol, length] : coder.lengths()) {
    out.push_back(static_cast<char>(symbol));
    out.push_back(static_cast<char>(length));
  }
  BitWriter writer;
  writer.reserve((payload_bits + 7) / 8);
  coder.encode(symbol_scratch(), writer);
  obs::PipelineMetrics::global().record_encode_reallocs(
      writer.realloc_count());
  const std::vector<std::uint8_t> payload = writer.finish();
  out.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  return out;
}

void decode_raw(std::string_view body, std::size_t plain_len, char* out) {
  if (body.size() != plain_len) {
    raise_corrupt(CorruptKind::kPayloadMismatch,
                  "chunk: raw body holds " + std::to_string(body.size()) +
                      " bytes, expected " + std::to_string(plain_len));
  }
  std::memcpy(out, body.data(), body.size());
}

void decode_packed(std::string_view body, std::size_t plain_len, char* out) {
  if (body.empty()) {
    raise_corrupt(CorruptKind::kTruncated, "chunk: packed body missing width");
  }
  const std::size_t width = static_cast<std::uint8_t>(body[0]);
  if (width == 0 || width > 8) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "chunk: packed width " + std::to_string(width) +
                      " outside [1, 8]");
  }
  const std::string_view packed = body.substr(1);
  if (packed.size() != packed_bytes(plain_len, width)) {
    raise_corrupt(CorruptKind::kPayloadMismatch,
                  "chunk: packed body holds " + std::to_string(packed.size()) +
                      " bytes, expected " +
                      std::to_string(packed_bytes(plain_len, width)));
  }
  unpack_fixed_width(reinterpret_cast<const std::uint8_t*>(packed.data()),
                     packed.size(), width,
                     reinterpret_cast<std::uint8_t*>(out), plain_len);
}

void decode_huffman(std::string_view body, std::size_t plain_len, char* out) {
  if (body.size() < 2) {
    raise_corrupt(CorruptKind::kTruncated, "chunk: huffman body missing table");
  }
  const std::size_t table_count = static_cast<std::uint8_t>(body[0]) |
                                  (static_cast<std::uint8_t>(body[1]) << 8);
  if (table_count == 0 || table_count > 256) {
    raise_corrupt(CorruptKind::kBadCodeTable,
                  "chunk: huffman table count " + std::to_string(table_count) +
                      " outside [1, 256]");
  }
  if (body.size() < 2 + 2 * table_count) {
    raise_corrupt(CorruptKind::kTruncated,
                  "chunk: huffman table truncated (" +
                      std::to_string(body.size()) + " bytes for " +
                      std::to_string(table_count) + " entries)");
  }
  std::map<std::uint16_t, std::uint8_t> lengths;
  for (std::size_t i = 0; i < table_count; ++i) {
    const std::uint8_t symbol = static_cast<std::uint8_t>(body[2 + 2 * i]);
    const std::uint8_t length = static_cast<std::uint8_t>(body[3 + 2 * i]);
    if (!lengths.emplace(symbol, length).second) {
      raise_corrupt(CorruptKind::kBadCodeTable,
                    "chunk: duplicate huffman symbol " +
                        std::to_string(symbol));
    }
  }
  const HuffmanCoder coder(lengths);  // validates lengths + Kraft

  const std::string_view payload = body.substr(2 + 2 * table_count);
  std::vector<std::uint8_t>& bits = byte_scratch();
  bits.assign(payload.begin(), payload.end());
  BitReader reader(bits);
  const std::vector<std::uint16_t> symbols = coder.decode(reader, plain_len);
  if (reader.bits_remaining() >= 8) {
    raise_corrupt(CorruptKind::kPayloadMismatch,
                  "chunk: " + std::to_string(reader.bits_remaining()) +
                      " unconsumed bits after huffman payload");
  }
  for (std::size_t i = 0; i < plain_len; ++i) {
    out[i] = static_cast<char>(symbols[i]);
  }
}

}  // namespace

ChunkEntropy parse_chunk_entropy(const std::string& name) {
  if (name == "raw") return ChunkEntropy::kRaw;
  if (name == "packed") return ChunkEntropy::kPacked;
  if (name == "huffman") return ChunkEntropy::kHuffman;
  if (name == "auto") return ChunkEntropy::kAuto;
  throw std::invalid_argument(
      "chunk entropy mode \"" + name +
      "\" unknown (expected raw, packed, huffman, or auto)");
}

const char* chunk_entropy_name(ChunkEntropy mode) {
  switch (mode) {
    case ChunkEntropy::kRaw: return "raw";
    case ChunkEntropy::kPacked: return "packed";
    case ChunkEntropy::kHuffman: return "huffman";
    case ChunkEntropy::kAuto: return "auto";
  }
  return "unknown";
}

std::string encode_chunk(std::string_view plain, ChunkEntropy mode) {
  if (plain.empty() || mode == ChunkEntropy::kRaw) {
    return encode_raw(plain);
  }
  if (mode == ChunkEntropy::kPacked) {
    return encode_packed(plain);
  }
  if (mode == ChunkEntropy::kHuffman) {
    std::array<std::size_t, 256> freq;
    const HuffmanCoder coder = make_huffman(plain, freq);
    return encode_huffman(coder, exact_payload_bits(coder, freq));
  }
  // Auto: cost all three, keep the smallest. Ties break toward the
  // cheaper decoder (raw < packed < huffman) — deterministically, so the
  // archive stays bitwise-identical across runs and thread counts.
  const std::size_t raw_size = 1 + plain.size();
  const std::size_t packed_size =
      2 + packed_bytes(plain.size(), packed_width_for(plain));
  std::array<std::size_t, 256> freq;
  const HuffmanCoder coder = make_huffman(plain, freq);
  const std::size_t payload_bits = exact_payload_bits(coder, freq);
  const std::size_t huffman_size = huffman_encoded_size(coder, payload_bits);

  const std::size_t best = std::min({raw_size, packed_size, huffman_size});
  if (best == raw_size) return encode_raw(plain);
  if (best == packed_size) return encode_packed(plain);
  return encode_huffman(coder, payload_bits);
}

void decode_chunk(std::string_view encoded, std::size_t plain_len,
                  char* out) {
  if (encoded.empty()) {
    raise_corrupt(CorruptKind::kTruncated, "chunk: empty encoded chunk");
  }
  if (!chunk_expansion_ok(encoded.size() - 1, plain_len)) {
    raise_corrupt(CorruptKind::kPayloadMismatch,
                  "chunk: " + std::to_string(encoded.size()) +
                      " encoded bytes cannot expand to " +
                      std::to_string(plain_len) + " plain bytes");
  }
  const auto mode = static_cast<std::uint8_t>(encoded[0]);
  const std::string_view body = encoded.substr(1);
  switch (static_cast<ChunkEntropy>(mode)) {
    case ChunkEntropy::kRaw:
      return decode_raw(body, plain_len, out);
    case ChunkEntropy::kPacked:
      return decode_packed(body, plain_len, out);
    case ChunkEntropy::kHuffman:
      return decode_huffman(body, plain_len, out);
    default:
      raise_corrupt(CorruptKind::kBadHeaderField,
                    "chunk: unknown entropy mode " + std::to_string(mode));
  }
}

}  // namespace aic::baseline
