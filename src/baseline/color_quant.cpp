#include "baseline/color_quant.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace aic::baseline {

using tensor::Shape;
using tensor::Tensor;

ColorQuantCodec::ColorQuantCodec(std::size_t bits, float lo, float hi,
                                 Context ctx)
    : Codec(std::move(ctx)),
      bits_(bits),
      levels_(std::size_t{1} << bits),
      lo_(lo),
      hi_(hi) {
  if (bits_ == 0 || bits_ > 16) {
    throw std::invalid_argument("ColorQuantCodec: bits must be in [1, 16]");
  }
  if (!(lo_ < hi_)) {
    throw std::invalid_argument("ColorQuantCodec: lo must be < hi");
  }
}

std::string ColorQuantCodec::name() const {
  std::ostringstream out;
  out << "color-quant(bits=" << bits_ << ")";
  return out.str();
}

std::string ColorQuantCodec::spec() const {
  std::ostringstream out;
  out << "colorquant:bits=" << bits_;
  if (lo_ != 0.0f || hi_ != 1.0f) out << ",lo=" << lo_ << ",hi=" << hi_;
  return out.str();
}

double ColorQuantCodec::compression_ratio() const {
  return 32.0 / static_cast<double>(bits_);
}

Shape ColorQuantCodec::compressed_shape(const Shape& input) const {
  if (input.rank() != 4) {
    throw std::invalid_argument("ColorQuantCodec: input must be BCHW");
  }
  // Level indices are stored one per value; the nominal rate accounts for
  // their true bit width.
  return input;
}

Tensor ColorQuantCodec::compress(const Tensor& input) const {
  Tensor out(compressed_shape(input.shape()));
  const float span = hi_ - lo_;
  const float max_level = static_cast<float>(levels_ - 1);
  const auto in = input.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float normalized = std::clamp((in[i] - lo_) / span, 0.0f, 1.0f);
    dst[i] = std::round(normalized * max_level);
  }
  return out;
}

Tensor ColorQuantCodec::decompress(const Tensor& packed,
                                   const Shape& original) const {
  if (packed.shape() != original) {
    throw std::invalid_argument("ColorQuantCodec: packed shape mismatch");
  }
  Tensor out(original);
  const float span = hi_ - lo_;
  const float max_level = static_cast<float>(levels_ - 1);
  const auto in = packed.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    dst[i] = lo_ + span * (in[i] / max_level);
  }
  return out;
}

}  // namespace aic::baseline
