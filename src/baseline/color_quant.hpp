#pragma once

#include <cstddef>

#include "core/codec.hpp"

namespace aic::baseline {

/// Uniform color quantization (Heckbert 1982 family, §2.2): values are
/// snapped to 2^bits evenly spaced levels over a fixed [lo, hi] range.
/// Fixed rate by construction (bits per value), hence CR = 32/bits for
/// fp32 inputs. Serves as the simplest lossy baseline in the ablations.
class ColorQuantCodec final : public core::Codec {
 public:
  /// `bits` in [1, 16]; `lo`/`hi` is the representable range.
  ColorQuantCodec(std::size_t bits, float lo = 0.0f, float hi = 1.0f,
                  Context ctx = Context::process_default());

  std::string name() const override;
  std::string spec() const override;
  double compression_ratio() const override;
  tensor::Shape compressed_shape(const tensor::Shape& input) const override;
  tensor::Tensor compress(const tensor::Tensor& input) const override;
  tensor::Tensor decompress(const tensor::Tensor& packed,
                            const tensor::Shape& original) const override;

  std::size_t levels() const { return levels_; }
  std::size_t bits() const { return bits_; }
  float lo() const { return lo_; }
  float hi() const { return hi_; }

 private:
  std::size_t bits_;
  std::size_t levels_;
  float lo_;
  float hi_;
};

}  // namespace aic::baseline
