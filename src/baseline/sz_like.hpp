#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace aic::baseline {

/// An error-bounded predictive codec in the style of SZ (Di & Cappello
/// 2016) — the compressor family the paper cites as the CPU/GPU state
/// of the art that *cannot* be ported to the accelerators (§2.2, §5).
///
/// Per plane, in raster order:
///   1. 2-D Lorenzo prediction: p(i,j) = x(i-1,j) + x(i,j-1) − x(i-1,j-1)
///      using already-*reconstructed* neighbours (so the decoder stays in
///      lockstep and the bound is honoured);
///   2. linear quantization of the prediction residual with bin width
///      2·error_bound — every reconstructed value is within error_bound
///      of the original by construction;
///   3. entropy coding of the quantization codes (RLE of the dominant
///      zero bin + canonical Huffman), producing a *variable-length*
///      bitstream — the stage whose bit-level operators no accelerator
///      frontend exposes.
///
/// Unpredictable points (residual outside the code range) are stored
/// verbatim as fp32, as in SZ.
class SzLikeCodec {
 public:
  explicit SzLikeCodec(double error_bound);

  struct Stream {
    std::vector<std::uint8_t> bytes;
    std::size_t values = 0;
    std::size_t unpredictable = 0;
  };

  /// Compresses one H×W plane into an error-bounded stream.
  Stream compress_plane(const tensor::Tensor& plane) const;

  /// Exact inverse of compress_plane up to the error bound.
  tensor::Tensor decompress_plane(const Stream& stream, std::size_t height,
                                  std::size_t width) const;

  /// Achieved ratio against fp32 storage.
  static double achieved_ratio(const Stream& stream);

  /// Convenience: per-plane round trip of a BCHW tensor, returning the
  /// mean achieved compression ratio via `ratio_out` when non-null.
  tensor::Tensor round_trip(const tensor::Tensor& input,
                            double* ratio_out = nullptr) const;

  double error_bound() const { return error_bound_; }

 private:
  double error_bound_;
};

}  // namespace aic::baseline
