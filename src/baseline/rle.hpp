#pragma once

#include <cstdint>
#include <vector>

namespace aic::baseline {

/// One run-length symbol: `zero_run` zeros followed by `value`.
struct RleSymbol {
  std::uint16_t zero_run = 0;
  std::int32_t value = 0;
  bool operator==(const RleSymbol&) const = default;
};

/// Run-length encodes a sequence of integers (typically quantized DCT
/// coefficients in zig-zag order, where long zero runs dominate — Fig. 2).
/// A trailing all-zero run is encoded as a single end-of-block symbol
/// {0, 0} mirroring JPEG's EOB.
std::vector<RleSymbol> rle_encode(const std::vector<std::int32_t>& values);

/// Inverse of rle_encode; `length` is the expected output size. Raises
/// aic::io::CorruptStream when a symbol's run would overflow the block.
std::vector<std::int32_t> rle_decode(const std::vector<RleSymbol>& symbols,
                                     std::size_t length);

}  // namespace aic::baseline
