#include "baseline/zfp_like.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "baseline/bitstream.hpp"
#include "runtime/parallel_for.hpp"

namespace aic::baseline {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::size_t kBlock = 4;
constexpr std::size_t kBlockValues = kBlock * kBlock;
// Fixed-point significand precision used inside a block.
constexpr int kPrecision = 26;
constexpr std::uint32_t kNegabinaryMask = 0xaaaaaaaau;

std::uint32_t to_negabinary(std::int32_t x) {
  const std::uint32_t u = static_cast<std::uint32_t>(x);
  return (u + kNegabinaryMask) ^ kNegabinaryMask;
}

std::int32_t from_negabinary(std::uint32_t u) {
  return static_cast<std::int32_t>((u ^ kNegabinaryMask) - kNegabinaryMask);
}

// Total-sequency traversal order of a 4×4 block (low frequencies first),
// the 2-D analogue of ZFP's perm_2 table.
const std::array<std::size_t, kBlockValues>& sequency_order() {
  static const std::array<std::size_t, kBlockValues> order = [] {
    std::array<std::size_t, kBlockValues> o{};
    std::size_t cursor = 0;
    for (std::size_t sum = 0; sum <= 2 * (kBlock - 1); ++sum) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        for (std::size_t j = 0; j < kBlock; ++j) {
          if (i + j == sum) o[cursor++] = i * kBlock + j;
        }
      }
    }
    return o;
  }();
  return order;
}

}  // namespace

void ZfpLikeCodec::fwd_lift(std::int32_t* p, std::size_t stride) {
  std::int32_t x = p[0 * stride];
  std::int32_t y = p[1 * stride];
  std::int32_t z = p[2 * stride];
  std::int32_t w = p[3 * stride];
  // ZFP's non-orthogonal range-preserving transform.
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0 * stride] = x;
  p[1 * stride] = y;
  p[2 * stride] = z;
  p[3 * stride] = w;
}

void ZfpLikeCodec::inv_lift(std::int32_t* p, std::size_t stride) {
  std::int32_t x = p[0 * stride];
  std::int32_t y = p[1 * stride];
  std::int32_t z = p[2 * stride];
  std::int32_t w = p[3 * stride];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0 * stride] = x;
  p[1 * stride] = y;
  p[2 * stride] = z;
  p[3 * stride] = w;
}

ZfpLikeCodec::ZfpLikeCodec(double rate_bits_per_value, Context ctx)
    : Codec(std::move(ctx)), rate_(rate_bits_per_value) {
  if (rate_ <= 0.0 || rate_ > 32.0) {
    throw std::invalid_argument("ZfpLikeCodec: rate must be in (0, 32]");
  }
  bits_per_block_ = static_cast<std::size_t>(
      std::lround(rate_ * static_cast<double>(kBlockValues)));
  if (bits_per_block_ < 16) bits_per_block_ = 16;  // room for the header
}

std::string ZfpLikeCodec::name() const {
  std::ostringstream out;
  out << "zfp-like(rate=" << rate_ << ")";
  return out.str();
}

std::string ZfpLikeCodec::spec() const {
  std::ostringstream out;
  out << "zfp:rate=" << rate_;
  return out.str();
}

double ZfpLikeCodec::compression_ratio() const { return 32.0 / rate_; }

Shape ZfpLikeCodec::compressed_shape(const Shape& input) const {
  if (input.rank() != 4) {
    throw std::invalid_argument("ZfpLikeCodec: input must be BCHW");
  }
  if (input[2] % kBlock != 0 || input[3] % kBlock != 0) {
    throw std::invalid_argument("ZfpLikeCodec: dims must be multiples of 4");
  }
  const std::size_t blocks = (input[2] / kBlock) * (input[3] / kBlock);
  const std::size_t bits = blocks * bits_per_block_;
  const std::size_t words = (bits + 31) / 32;
  return Shape::bchw(input[0], input[1], 1, std::max<std::size_t>(words, 1));
}

std::vector<std::uint32_t> ZfpLikeCodec::compress_plane(
    const Tensor& plane) const {
  const std::size_t h = plane.shape()[0];
  const std::size_t w = plane.shape()[1];
  if (h % kBlock != 0 || w % kBlock != 0) {
    throw std::invalid_argument("ZfpLikeCodec: plane dims must be x4");
  }
  BitWriter writer;
  std::array<std::int32_t, kBlockValues> block{};
  for (std::size_t bi = 0; bi < h; bi += kBlock) {
    for (std::size_t bj = 0; bj < w; bj += kBlock) {
      // 1. Shared-exponent fixed point.
      float max_abs = 0.0f;
      for (std::size_t i = 0; i < kBlock; ++i) {
        for (std::size_t j = 0; j < kBlock; ++j) {
          max_abs = std::max(max_abs, std::fabs(plane.at(bi + i, bj + j)));
        }
      }
      std::size_t bit_budget = bits_per_block_;
      if (max_abs == 0.0f) {
        writer.write_bits(0, 1);  // empty-block flag
        // Fixed rate: pad the rest of the block budget.
        for (std::size_t b = 1; b < bit_budget; ++b) writer.write_bits(0, 1);
        continue;
      }
      writer.write_bits(1, 1);
      int exponent = 0;
      (void)std::frexp(max_abs, &exponent);
      // 9-bit biased exponent header (range ±255 covers fp32).
      writer.write_bits(static_cast<std::uint32_t>(exponent + 256), 9);
      bit_budget -= 10;

      const double scale = std::ldexp(1.0, kPrecision - exponent);
      for (std::size_t i = 0; i < kBlock; ++i) {
        for (std::size_t j = 0; j < kBlock; ++j) {
          block[i * kBlock + j] = static_cast<std::int32_t>(
              std::lround(plane.at(bi + i, bj + j) * scale));
        }
      }
      // 2. Decorrelate rows then columns.
      for (std::size_t i = 0; i < kBlock; ++i) fwd_lift(&block[i * kBlock], 1);
      for (std::size_t j = 0; j < kBlock; ++j) fwd_lift(&block[j], kBlock);
      // 3. Negabinary + sequency order.
      std::array<std::uint32_t, kBlockValues> coded{};
      const auto& order = sequency_order();
      for (std::size_t k = 0; k < kBlockValues; ++k) {
        coded[k] = to_negabinary(block[order[k]]);
      }
      // 4. Bit-plane emission, MSB first, within the budget. The lifting
      // transform can grow values by ~2 bits beyond kPrecision.
      for (int plane_bit = kPrecision + 3; plane_bit >= 0 && bit_budget > 0;
           --plane_bit) {
        std::uint32_t any = 0;
        for (std::uint32_t c : coded) any |= (c >> plane_bit) & 1u;
        writer.write_bits(any, 1);
        --bit_budget;
        if (!any) continue;
        for (std::size_t k = 0; k < kBlockValues && bit_budget > 0; ++k) {
          writer.write_bits((coded[k] >> plane_bit) & 1u, 1);
          --bit_budget;
        }
      }
      // Fixed rate: pad any unused budget.
      while (bit_budget > 0) {
        writer.write_bits(0, 1);
        --bit_budget;
      }
    }
  }
  const std::vector<std::uint8_t> bytes = writer.finish();
  std::vector<std::uint32_t> words((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    words[i / 4] |= static_cast<std::uint32_t>(bytes[i]) << (24 - 8 * (i % 4));
  }
  return words;
}

Tensor ZfpLikeCodec::decompress_plane(const std::vector<std::uint32_t>& words,
                                      std::size_t height,
                                      std::size_t width) const {
  std::vector<std::uint8_t> bytes(words.size() * 4);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(words[i / 4] >> (24 - 8 * (i % 4)));
  }
  BitReader reader(bytes);
  Tensor plane(Shape::matrix(height, width));
  std::array<std::int32_t, kBlockValues> block{};
  for (std::size_t bi = 0; bi < height; bi += kBlock) {
    for (std::size_t bj = 0; bj < width; bj += kBlock) {
      std::size_t bit_budget = bits_per_block_;
      const bool nonzero = reader.read_bit();
      --bit_budget;
      if (!nonzero) {
        for (std::size_t b = 0; b < bit_budget; ++b) (void)reader.read_bit();
        for (std::size_t i = 0; i < kBlock; ++i) {
          for (std::size_t j = 0; j < kBlock; ++j) {
            plane.at(bi + i, bj + j) = 0.0f;
          }
        }
        continue;
      }
      const int exponent = static_cast<int>(reader.read_bits(9)) - 256;
      bit_budget -= 9;
      std::array<std::uint32_t, kBlockValues> coded{};
      for (int plane_bit = kPrecision + 3; plane_bit >= 0 && bit_budget > 0;
           --plane_bit) {
        const bool any = reader.read_bit();
        --bit_budget;
        if (!any) continue;
        for (std::size_t k = 0; k < kBlockValues && bit_budget > 0; ++k) {
          if (reader.read_bit()) coded[k] |= 1u << plane_bit;
          --bit_budget;
        }
      }
      while (bit_budget > 0) {
        (void)reader.read_bit();
        --bit_budget;
      }
      const auto& order = sequency_order();
      for (std::size_t k = 0; k < kBlockValues; ++k) {
        block[order[k]] = from_negabinary(coded[k]);
      }
      for (std::size_t j = 0; j < kBlock; ++j) inv_lift(&block[j], kBlock);
      for (std::size_t i = 0; i < kBlock; ++i) inv_lift(&block[i * kBlock], 1);
      const double inv_scale = std::ldexp(1.0, exponent - kPrecision);
      for (std::size_t i = 0; i < kBlock; ++i) {
        for (std::size_t j = 0; j < kBlock; ++j) {
          plane.at(bi + i, bj + j) =
              static_cast<float>(block[i * kBlock + j] * inv_scale);
        }
      }
    }
  }
  return plane;
}

Tensor ZfpLikeCodec::compress(const Tensor& input) const {
  Context::PoolScope pool_scope(ctx_);
  const Shape out_shape = compressed_shape(input.shape());
  Tensor out(out_shape);
  const std::size_t words_per_plane = out_shape[3];
  // Plane streams are fixed rate, so every plane's output offset is
  // known up front and the per-plane encodes fan out over the pool.
  runtime::parallel_for(
      0, input.shape()[0] * input.shape()[1],
      [&](std::size_t p) {
        const std::vector<std::uint32_t> words = compress_plane(
            input.slice_plane(p / input.shape()[1], p % input.shape()[1]));
        float* dst = out.raw() + p * words_per_plane;
        for (std::size_t i = 0; i < words.size(); ++i) {
          // Bit patterns ride in floats; only copied, never operated on.
          dst[i] = std::bit_cast<float>(words[i]);
        }
      },
      {.grain = 1});
  return out;
}

Tensor ZfpLikeCodec::decompress(const Tensor& packed,
                                const Shape& original) const {
  Context::PoolScope pool_scope(ctx_);
  if (packed.shape() != compressed_shape(original)) {
    throw std::invalid_argument("ZfpLikeCodec: packed shape mismatch");
  }
  Tensor out(original);
  const std::size_t words_per_plane = packed.shape()[3];
  runtime::parallel_for(
      0, original[0] * original[1],
      [&](std::size_t p) {
        const float* src = packed.raw() + p * words_per_plane;
        std::vector<std::uint32_t> words(words_per_plane);
        for (std::size_t i = 0; i < words.size(); ++i) {
          words[i] = std::bit_cast<std::uint32_t>(src[i]);
        }
        out.set_plane(p / original[1], p % original[1],
                      decompress_plane(words, original[2], original[3]));
      },
      {.grain = 1});
  return out;
}

}  // namespace aic::baseline
