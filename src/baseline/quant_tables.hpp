#pragma once

#include <array>
#include <cstdint>

namespace aic::baseline {

/// JPEG Annex K quantization tables and the libjpeg quality scaling that
/// Fig. 3 sweeps (quality factor -> quantization strength).
using QuantTable = std::array<std::uint16_t, 64>;

/// Standard luminance quantization table (ITU-T T.81 Table K.1).
const QuantTable& jpeg_luminance_table();

/// Standard chrominance quantization table (ITU-T T.81 Table K.2).
const QuantTable& jpeg_chrominance_table();

/// Scales a base table by JPEG quality in [1, 100] using the libjpeg
/// convention: scale = 5000/q for q < 50, else 200 - 2q; entries are
/// clamped to [1, 255]. quality == 50 returns the base table.
QuantTable scale_table(const QuantTable& base, int quality);

}  // namespace aic::baseline
