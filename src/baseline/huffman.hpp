#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "baseline/bitstream.hpp"

namespace aic::baseline {

/// Canonical Huffman coder over 16-bit symbols.
///
/// Used by the JPEG-style entropy stage. Codes are rebuilt per stream from
/// symbol frequencies and shipped as a (symbol, length) table, exactly the
/// data-dependent, bit-twiddling machinery that makes VLE schemes
/// non-portable to the accelerators (§3.1).
class HuffmanCoder {
 public:
  /// Longest admissible code: canonical codes are stored in uint32, so a
  /// longer code would silently overflow during enumeration. The
  /// histogram constructor rebalances skewed weights to stay within it;
  /// the table constructor rejects longer lengths as corrupt.
  static constexpr std::uint8_t kMaxCodeLength = 32;

  /// Builds a code from the symbol histogram of `symbols`.
  /// Requires at least one symbol.
  explicit HuffmanCoder(const std::vector<std::uint16_t>& symbols);

  /// Rebuilds a coder from a canonical (symbol -> code length) table,
  /// e.g. one shipped in a compressed stream's header. The table is
  /// untrusted: lengths outside [1, kMaxCodeLength] or a table violating
  /// the Kraft inequality raise aic::io::CorruptStream.
  explicit HuffmanCoder(const std::map<std::uint16_t, std::uint8_t>& lengths);

  /// Encodes symbols into `writer`. Throws on symbols absent from the code.
  void encode(const std::vector<std::uint16_t>& symbols,
              BitWriter& writer) const;

  /// Decodes exactly `count` symbols from `reader`. Raises
  /// aic::io::CorruptStream when the stream is exhausted, `count`
  /// exceeds the remaining bits, or the bits match no code.
  std::vector<std::uint16_t> decode(BitReader& reader,
                                    std::size_t count) const;

  /// The canonical code-length table (serializable stream header).
  const std::map<std::uint16_t, std::uint8_t>& lengths() const {
    return lengths_;
  }

  /// Total bits needed to encode `symbols` with this code (no header).
  std::size_t encoded_bits(const std::vector<std::uint16_t>& symbols) const;

  /// Window width of the table-driven decode LUT: one peek of this many
  /// bits resolves up to two whole symbols per lookup. Codes longer than
  /// the window fall back to the exact bit-walk.
  static constexpr std::size_t kLutBits = 11;

 private:
  void build_canonical_codes();
  void build_decode_lut();

  /// One decode-LUT entry: the next kLutBits bits of the stream resolve
  /// `count` symbols (0 = code longer than the window, bit-walk instead)
  /// consuming `bits` bits total.
  struct LutEntry {
    std::uint16_t symbols[2] = {0, 0};
    std::uint8_t count = 0;
    std::uint8_t bits = 0;
  };

  std::map<std::uint16_t, std::uint8_t> lengths_;
  std::map<std::uint16_t, std::uint32_t> codes_;
  // Decode table: (length, code) -> symbol.
  std::map<std::pair<std::uint8_t, std::uint32_t>, std::uint16_t> decode_;
  // Dense encode tables indexed by symbol (0 length = absent): the map
  // lookups were the entire encode inner loop.
  std::vector<std::uint32_t> encode_code_;
  std::vector<std::uint8_t> encode_len_;
  std::vector<LutEntry> decode_lut_;  // 1 << kLutBits entries
};

}  // namespace aic::baseline
