#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "baseline/bitstream.hpp"

namespace aic::baseline {

/// Canonical Huffman coder over 16-bit symbols.
///
/// Used by the JPEG-style entropy stage. Codes are rebuilt per stream from
/// symbol frequencies and shipped as a (symbol, length) table, exactly the
/// data-dependent, bit-twiddling machinery that makes VLE schemes
/// non-portable to the accelerators (§3.1).
class HuffmanCoder {
 public:
  /// Builds a code from the symbol histogram of `symbols`.
  /// Requires at least one symbol.
  explicit HuffmanCoder(const std::vector<std::uint16_t>& symbols);

  /// Rebuilds a coder from a canonical (symbol -> code length) table.
  explicit HuffmanCoder(const std::map<std::uint16_t, std::uint8_t>& lengths);

  /// Encodes symbols into `writer`. Throws on symbols absent from the code.
  void encode(const std::vector<std::uint16_t>& symbols,
              BitWriter& writer) const;

  /// Decodes exactly `count` symbols from `reader`.
  std::vector<std::uint16_t> decode(BitReader& reader,
                                    std::size_t count) const;

  /// The canonical code-length table (serializable stream header).
  const std::map<std::uint16_t, std::uint8_t>& lengths() const {
    return lengths_;
  }

  /// Total bits needed to encode `symbols` with this code (no header).
  std::size_t encoded_bits(const std::vector<std::uint16_t>& symbols) const;

 private:
  void build_canonical_codes();

  std::map<std::uint16_t, std::uint8_t> lengths_;
  std::map<std::uint16_t, std::uint32_t> codes_;
  // Decode table: (length, code) -> symbol.
  std::map<std::pair<std::uint8_t, std::uint32_t>, std::uint16_t> decode_;
};

}  // namespace aic::baseline
