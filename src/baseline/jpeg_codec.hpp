#pragma once

#include <cstdint>
#include <vector>

#include "baseline/quant_tables.hpp"
#include "tensor/tensor.hpp"

namespace aic::baseline {

/// A JPEG-style block codec over float planes in [0, 1]:
/// 8×8 DCT-II → quantization (quality-scaled Annex K table) → zig-zag →
/// RLE → Huffman. Unlike the portable DCT+Chop codec, the output is a
/// *variable-length* bitstream requiring bit shifts — the precise reason
/// (§3.1) this scheme cannot run on the target accelerators. It exists
/// here as the Fig. 3 motivation study and as a fidelity reference.
class JpegLikeCodec {
 public:
  /// quality in [1, 100]; `chroma` selects the chrominance base table.
  explicit JpegLikeCodec(int quality, bool chroma = false);

  /// Quantized DCT coefficients of every 8×8 block, row-major per block.
  /// Plane values are mapped [0,1] -> [-128, 127] before the transform.
  /// Output layout: blocks in raster order, 64 coefficients each.
  std::vector<std::int32_t> quantize_plane(const tensor::Tensor& plane) const;

  /// Full entropy-coded stream for one plane.
  struct Stream {
    std::vector<std::uint8_t> bytes;
    std::size_t symbol_count = 0;
    std::size_t plane_values = 0;
  };
  Stream compress_plane(const tensor::Tensor& plane) const;

  /// Reconstructs a plane from `quantize_plane` output.
  tensor::Tensor dequantize_plane(const std::vector<std::int32_t>& coeffs,
                                  std::size_t height,
                                  std::size_t width) const;

  /// Decodes a full stream back to a plane.
  tensor::Tensor decompress_plane(const Stream& stream, std::size_t height,
                                  std::size_t width) const;

  /// Achieved compression ratio of a stream against fp32 plane storage.
  static double achieved_ratio(const Stream& stream);

  int quality() const { return quality_; }
  const QuantTable& table() const { return table_; }

 private:
  int quality_;
  QuantTable table_;
};

/// Fig. 3's measurement: fraction of blocks, per coefficient position,
/// whose quantized DCT coefficient is nonzero. `planes` are H×W tensors
/// (one colour channel each). Returns a row-major 8×8 matrix of
/// fractions in [0, 1].
std::vector<double> nonzero_census(const std::vector<tensor::Tensor>& planes,
                                   int quality);

}  // namespace aic::baseline
