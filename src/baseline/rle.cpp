#include "baseline/rle.hpp"

#include <stdexcept>
#include <string>

#include "io/error.hpp"

namespace aic::baseline {

std::vector<RleSymbol> rle_encode(const std::vector<std::int32_t>& values) {
  std::vector<RleSymbol> symbols;
  std::uint16_t run = 0;
  for (std::int32_t v : values) {
    if (v == 0) {
      ++run;
      continue;
    }
    symbols.push_back({run, v});
    run = 0;
  }
  if (run > 0) {
    symbols.push_back({0, 0});  // end-of-block: all remaining values zero
  }
  return symbols;
}

std::vector<std::int32_t> rle_decode(const std::vector<RleSymbol>& symbols,
                                     std::size_t length) {
  std::vector<std::int32_t> values;
  values.reserve(length);
  for (const RleSymbol& s : symbols) {
    if (s.zero_run == 0 && s.value == 0) {
      // End of block: pad to full length.
      while (values.size() < length) values.push_back(0);
      break;
    }
    // Subtraction-form bound: reject a symbol whose run would spill past
    // `length` BEFORE emitting anything, so adversarial symbol streams
    // can neither grow the vector past the block nor rely on a
    // post-hoc size check.
    if (static_cast<std::size_t>(s.zero_run) + 1 > length - values.size()) {
      io::raise_corrupt(
          io::CorruptKind::kBadSymbol,
          "rle_decode: run of " + std::to_string(s.zero_run + 1) +
              " values overflows the block (" +
              std::to_string(length - values.size()) + " slots left)");
    }
    for (std::uint16_t i = 0; i < s.zero_run; ++i) values.push_back(0);
    values.push_back(s.value);
  }
  while (values.size() < length) values.push_back(0);
  return values;
}

}  // namespace aic::baseline
