#include "baseline/rle.hpp"

#include <stdexcept>

namespace aic::baseline {

std::vector<RleSymbol> rle_encode(const std::vector<std::int32_t>& values) {
  std::vector<RleSymbol> symbols;
  std::uint16_t run = 0;
  for (std::int32_t v : values) {
    if (v == 0) {
      ++run;
      continue;
    }
    symbols.push_back({run, v});
    run = 0;
  }
  if (run > 0) {
    symbols.push_back({0, 0});  // end-of-block: all remaining values zero
  }
  return symbols;
}

std::vector<std::int32_t> rle_decode(const std::vector<RleSymbol>& symbols,
                                     std::size_t length) {
  std::vector<std::int32_t> values;
  values.reserve(length);
  for (const RleSymbol& s : symbols) {
    if (s.zero_run == 0 && s.value == 0) {
      // End of block: pad to full length.
      while (values.size() < length) values.push_back(0);
      break;
    }
    for (std::uint16_t i = 0; i < s.zero_run; ++i) values.push_back(0);
    values.push_back(s.value);
  }
  while (values.size() < length) values.push_back(0);
  if (values.size() != length) {
    throw std::invalid_argument("rle_decode: symbols exceed expected length");
  }
  return values;
}

}  // namespace aic::baseline
