#include "baseline/quant_tables.hpp"

#include <algorithm>
#include <stdexcept>

namespace aic::baseline {

const QuantTable& jpeg_luminance_table() {
  static const QuantTable table = {
      16, 11, 10, 16, 24,  40,  51,  61,   //
      12, 12, 14, 19, 26,  58,  60,  55,   //
      14, 13, 16, 24, 40,  57,  69,  56,   //
      14, 17, 22, 29, 51,  87,  80,  62,   //
      18, 22, 37, 56, 68,  109, 103, 77,   //
      24, 35, 55, 64, 81,  104, 113, 92,   //
      49, 64, 78, 87, 103, 121, 120, 101,  //
      72, 92, 95, 98, 112, 100, 103, 99};
  return table;
}

const QuantTable& jpeg_chrominance_table() {
  static const QuantTable table = {
      17, 18, 24, 47, 99, 99, 99, 99,  //
      18, 21, 26, 66, 99, 99, 99, 99,  //
      24, 26, 56, 99, 99, 99, 99, 99,  //
      47, 66, 99, 99, 99, 99, 99, 99,  //
      99, 99, 99, 99, 99, 99, 99, 99,  //
      99, 99, 99, 99, 99, 99, 99, 99,  //
      99, 99, 99, 99, 99, 99, 99, 99,  //
      99, 99, 99, 99, 99, 99, 99, 99};
  return table;
}

QuantTable scale_table(const QuantTable& base, int quality) {
  if (quality < 1 || quality > 100) {
    throw std::invalid_argument("scale_table: quality must be in [1, 100]");
  }
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  QuantTable scaled{};
  for (std::size_t i = 0; i < 64; ++i) {
    const int value = (static_cast<int>(base[i]) * scale + 50) / 100;
    scaled[i] = static_cast<std::uint16_t>(std::clamp(value, 1, 255));
  }
  return scaled;
}

}  // namespace aic::baseline
