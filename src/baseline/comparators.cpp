#include "baseline/comparators.hpp"

#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "baseline/color_quant.hpp"
#include "baseline/zfp_like.hpp"
#include "core/codec_factory.hpp"
#include "core/plan_cache.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/timer.hpp"

namespace aic::baseline {

using tensor::Shape;
using tensor::Tensor;

namespace {

std::uint64_t param_milli(double value) {
  return static_cast<std::uint64_t>(std::llround(value * 1000.0));
}

/// Plan for parameter-only comparators (zfp, sz): nothing resident, no
/// executor scratch — the plan exists so baseline codecs account through
/// the same cache and metrics as the core kinds.
class ParamPlan final : public core::CodecPlan {
 public:
  explicit ParamPlan(const core::PlanKey& key) : core::CodecPlan(key) {}
  std::size_t resident_bytes() const override { return 0; }
  std::size_t workspace_bytes(std::size_t, std::size_t) const override {
    return 0;
  }
};

/// Plan holding the quality-scaled JPEG quantization table (the codec's
/// compile-time artifact) via a ready-to-run JpegLikeCodec.
class JpegPlan final : public core::CodecPlan {
 public:
  JpegPlan(const core::PlanKey& key, int quality, bool chroma)
      : core::CodecPlan(key), codec_(quality, chroma) {}
  const JpegLikeCodec& codec() const { return codec_; }
  std::size_t resident_bytes() const override { return sizeof(QuantTable); }
  std::size_t workspace_bytes(std::size_t, std::size_t) const override {
    return 0;
  }

 private:
  JpegLikeCodec codec_;
};

core::PlanKey baseline_key(core::CodecKind kind, std::uint64_t param) {
  core::PlanKey key;
  key.kind = kind;
  key.param_milli = param;
  return key;
}

double stats_ratio(const core::CodecStats& stats) {
  const core::CodecStatsSnapshot snap = stats.snapshot();
  if (snap.compress.bytes_out == 0) return 1.0;
  return static_cast<double>(snap.compress.bytes_in) /
         static_cast<double>(snap.compress.bytes_out);
}

}  // namespace

// ---------------------------------------------------------------------------
// SzComparatorCodec

SzComparatorCodec::SzComparatorCodec(double error_bound, Context ctx)
    : Codec(std::move(ctx)), inner_(error_bound) {
  // Parameter-only plan: keeps baseline resolutions visible in
  // plan_cache.* metrics alongside the core kinds.
  (void)core::PlanCache::of(ctx_).resolve(
      baseline_key(core::CodecKind::kSz, param_milli(error_bound)),
      [error_bound] {
        return std::make_shared<ParamPlan>(
            baseline_key(core::CodecKind::kSz, param_milli(error_bound)));
      });
}

std::string SzComparatorCodec::name() const {
  std::ostringstream out;
  out << "sz-like(eb=" << inner_.error_bound() << ")";
  return out.str();
}

std::string SzComparatorCodec::spec() const {
  std::ostringstream out;
  out << "sz:eb=" << inner_.error_bound();
  return out.str();
}

double SzComparatorCodec::compression_ratio() const {
  return stats_ratio(stats());
}

Shape SzComparatorCodec::compressed_shape(const Shape& input) const {
  if (input.rank() != 4) {
    throw std::invalid_argument("SzComparatorCodec: input must be BCHW");
  }
  // The packed form is the reconstruction (variable-length streams have
  // no dense packed layout); the achieved size lives in stats().
  return input;
}

Tensor SzComparatorCodec::compress(const Tensor& input) const {
  AIC_TRACE_SCOPE("sz.compress");
  Context::PoolScope pool_scope(ctx_);
  runtime::Timer timer;
  (void)compressed_shape(input.shape());
  const std::size_t planes = input.shape()[0] * input.shape()[1];
  // Planes are independent streams; fan them over the pool. The byte
  // total is a commutative sum, so the relaxed atomic keeps stats
  // deterministic regardless of completion order.
  std::atomic<std::size_t> stream_bytes{0};
  Tensor out(input.shape());
  runtime::parallel_for(
      0, planes,
      [&](std::size_t p) {
        const std::size_t b = p / input.shape()[1];
        const std::size_t c = p % input.shape()[1];
        const SzLikeCodec::Stream stream =
            inner_.compress_plane(input.slice_plane(b, c));
        stream_bytes.fetch_add(stream.bytes.size(),
                               std::memory_order_relaxed);
        out.set_plane(b, c,
                      inner_.decompress_plane(stream, input.shape()[2],
                                              input.shape()[3]));
      },
      {.grain = 1});
  stats_.record_compress(planes, 0, input.size_bytes(),
                         stream_bytes.load(), timer.nanos());
  return out;
}

Tensor SzComparatorCodec::decompress(const Tensor& packed,
                                     const Shape& original) const {
  if (packed.shape() != original) {
    throw std::invalid_argument("SzComparatorCodec: packed shape mismatch");
  }
  return packed;
}

// ---------------------------------------------------------------------------
// JpegComparatorCodec

JpegComparatorCodec::JpegComparatorCodec(int quality, bool chroma, Context ctx)
    : Codec(std::move(ctx)), quality_(quality), chroma_(chroma) {
  const core::PlanKey key = baseline_key(
      core::CodecKind::kJpeg,
      param_milli(static_cast<double>(quality)) + (chroma ? 1 : 0));
  plan_ = core::PlanCache::of(ctx_).resolve(key, [&key, quality, chroma] {
    return std::make_shared<JpegPlan>(key, quality, chroma);
  });
  inner_ = &static_cast<const JpegPlan*>(plan_.get())->codec();
}

std::string JpegComparatorCodec::name() const {
  std::ostringstream out;
  out << "jpeg-like(q=" << quality_ << ")";
  return out.str();
}

std::string JpegComparatorCodec::spec() const {
  std::ostringstream out;
  out << "jpeg:q=" << quality_;
  if (chroma_) out << ",chroma=1";
  return out.str();
}

double JpegComparatorCodec::compression_ratio() const {
  return stats_ratio(stats());
}

Shape JpegComparatorCodec::compressed_shape(const Shape& input) const {
  if (input.rank() != 4) {
    throw std::invalid_argument("JpegComparatorCodec: input must be BCHW");
  }
  if (input[2] % 8 != 0 || input[3] % 8 != 0) {
    throw std::invalid_argument(
        "JpegComparatorCodec: dims must be multiples of 8");
  }
  return input;
}

Tensor JpegComparatorCodec::compress(const Tensor& input) const {
  AIC_TRACE_SCOPE("jpeg.compress");
  Context::PoolScope pool_scope(ctx_);
  runtime::Timer timer;
  (void)compressed_shape(input.shape());
  const std::size_t planes = input.shape()[0] * input.shape()[1];
  std::atomic<std::size_t> stream_bytes{0};
  Tensor out(input.shape());
  runtime::parallel_for(
      0, planes,
      [&](std::size_t p) {
        const std::size_t b = p / input.shape()[1];
        const std::size_t c = p % input.shape()[1];
        const JpegLikeCodec::Stream stream =
            inner_->compress_plane(input.slice_plane(b, c));
        stream_bytes.fetch_add(stream.bytes.size(),
                               std::memory_order_relaxed);
        out.set_plane(b, c,
                      inner_->decompress_plane(stream, input.shape()[2],
                                               input.shape()[3]));
      },
      {.grain = 1});
  stats_.record_compress(planes, 0, input.size_bytes(),
                         stream_bytes.load(), timer.nanos());
  return out;
}

Tensor JpegComparatorCodec::decompress(const Tensor& packed,
                                       const Shape& original) const {
  if (packed.shape() != original) {
    throw std::invalid_argument("JpegComparatorCodec: packed shape mismatch");
  }
  return packed;
}

// ---------------------------------------------------------------------------

void register_comparator_codecs() {
  core::CodecFactory& factory = core::CodecFactory::global();
  factory.register_codec(
      "zfp", "ZFP-style fixed-rate block codec (CPU comparator, Fig. 9)",
      [](const core::SpecParams& p, const Context& ctx) -> core::CodecPtr {
        const double rate = p.get_double("rate", 8.0);
        // Parameter-only plan resolution, for uniform cache accounting.
        const core::PlanKey key =
            baseline_key(core::CodecKind::kZfp, param_milli(rate));
        (void)core::PlanCache::of(ctx).resolve(key, [&key] {
          return std::make_shared<ParamPlan>(key);
        });
        return std::make_shared<ZfpLikeCodec>(rate, ctx);
      });
  factory.register_codec(
      "sz", "SZ-style error-bounded codec (round-trip comparator)",
      [](const core::SpecParams& p, const Context& ctx) -> core::CodecPtr {
        return std::make_shared<SzComparatorCodec>(p.get_double("eb", 1e-3),
                                                   ctx);
      });
  factory.register_codec(
      "jpeg", "JPEG-style codec (round-trip comparator, Fig. 3)",
      [](const core::SpecParams& p, const Context& ctx) -> core::CodecPtr {
        return std::make_shared<JpegComparatorCodec>(
            static_cast<int>(p.get_size("q", 75)),
            p.get_bool("chroma", false), ctx);
      });
  factory.register_codec(
      "colorquant", "uniform color quantization baseline (CR = 32/bits)",
      [](const core::SpecParams& p, const Context& ctx) -> core::CodecPtr {
        return std::make_shared<ColorQuantCodec>(
            p.get_size("bits", 8),
            static_cast<float>(p.get_double("lo", 0.0)),
            static_cast<float>(p.get_double("hi", 1.0)), ctx);
      },
      {"cq"});
}

}  // namespace aic::baseline
