#include "baseline/jpeg_codec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baseline/huffman.hpp"
#include "baseline/rle.hpp"
#include "core/dct.hpp"
#include "core/zigzag.hpp"
#include "tensor/matmul.hpp"

namespace aic::baseline {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::size_t kBlock = 8;

// Magnitude category of a coefficient (number of bits of |v|), as in
// JPEG's size/amplitude split.
std::uint8_t size_category(std::int32_t v) {
  std::uint32_t magnitude = static_cast<std::uint32_t>(v < 0 ? -v : v);
  std::uint8_t bits = 0;
  while (magnitude != 0) {
    ++bits;
    magnitude >>= 1;
  }
  return bits;
}

// Packs an RLE symbol into the 16-bit Huffman alphabet:
// high byte = zero-run length (clamped to 255), low byte = size category.
// The EOB symbol {0,0} maps to 0.
std::uint16_t pack_symbol(const RleSymbol& s) {
  const std::uint16_t run = std::min<std::uint16_t>(s.zero_run, 255);
  return static_cast<std::uint16_t>((run << 8) |
                                    size_category(s.value));
}

void validate_plane(const Tensor& plane) {
  if (plane.shape().rank() != 2 || plane.shape()[0] % kBlock != 0 ||
      plane.shape()[1] % kBlock != 0) {
    throw std::invalid_argument(
        "JpegLikeCodec: plane must be rank 2 with block-divisible dims");
  }
}

}  // namespace

JpegLikeCodec::JpegLikeCodec(int quality, bool chroma)
    : quality_(quality),
      table_(scale_table(
          chroma ? jpeg_chrominance_table() : jpeg_luminance_table(),
          quality)) {}

std::vector<std::int32_t> JpegLikeCodec::quantize_plane(
    const Tensor& plane) const {
  validate_plane(plane);
  const std::size_t h = plane.shape()[0];
  const std::size_t w = plane.shape()[1];
  const Tensor t = core::dct_matrix(kBlock);
  const Tensor tt = t.transposed();

  std::vector<std::int32_t> coeffs;
  coeffs.reserve(h * w);
  Tensor tile(Shape::matrix(kBlock, kBlock));
  for (std::size_t bi = 0; bi < h; bi += kBlock) {
    for (std::size_t bj = 0; bj < w; bj += kBlock) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        for (std::size_t j = 0; j < kBlock; ++j) {
          // [0,1] -> [-128, 127] level shift as in JPEG.
          tile.at(i, j) = plane.at(bi + i, bj + j) * 255.0f - 128.0f;
        }
      }
      const Tensor d = tensor::matmul(tensor::matmul(t, tile), tt);
      for (std::size_t k = 0; k < kBlock * kBlock; ++k) {
        const float q = static_cast<float>(table_[k]);
        coeffs.push_back(
            static_cast<std::int32_t>(std::lround(d.at(k) / q)));
      }
    }
  }
  return coeffs;
}

JpegLikeCodec::Stream JpegLikeCodec::compress_plane(
    const Tensor& plane) const {
  const std::vector<std::int32_t> coeffs = quantize_plane(plane);
  const auto zigzag = core::zigzag_flat(kBlock);

  // Zig-zag each block, RLE, then pack symbols for the entropy stage.
  std::vector<std::uint16_t> symbols;
  std::vector<std::int32_t> amplitudes;
  const std::size_t blocks = coeffs.size() / 64;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::vector<std::int32_t> scanned(64);
    for (std::size_t k = 0; k < 64; ++k) {
      scanned[k] = coeffs[b * 64 + zigzag[k]];
    }
    for (const RleSymbol& s : rle_encode(scanned)) {
      symbols.push_back(pack_symbol(s));
      amplitudes.push_back(s.value);
    }
    symbols.push_back(0xffff);  // block separator (distinct from EOB)
    amplitudes.push_back(0);
  }

  const HuffmanCoder coder(symbols);
  BitWriter writer;
  // Header: code-length table (16-bit symbol + 8-bit length each).
  writer.write_bits(static_cast<std::uint32_t>(coder.lengths().size()), 16);
  for (const auto& [symbol, length] : coder.lengths()) {
    writer.write_bits(symbol, 16);
    writer.write_bits(length, 8);
  }
  writer.write_bits(static_cast<std::uint32_t>(symbols.size()), 32);
  // Body: interleave each Huffman symbol with its amplitude bits.
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const std::uint16_t s = symbols[i];
    std::vector<std::uint16_t> one{s};
    coder.encode(one, writer);
    if (s != 0xffff) {
      const std::uint8_t category = static_cast<std::uint8_t>(s & 0xff);
      if (category > 0) {
        const std::int32_t v = amplitudes[i];
        writer.write_bits(v < 0 ? 1u : 0u, 1);
        writer.write_bits(static_cast<std::uint32_t>(v < 0 ? -v : v),
                          category);
      }
    }
  }

  Stream stream;
  stream.symbol_count = symbols.size();
  stream.plane_values = plane.numel();
  stream.bytes = writer.finish();
  return stream;
}

Tensor JpegLikeCodec::dequantize_plane(const std::vector<std::int32_t>& coeffs,
                                       std::size_t height,
                                       std::size_t width) const {
  if (coeffs.size() != height * width) {
    throw std::invalid_argument("dequantize_plane: coefficient count mismatch");
  }
  const Tensor t = core::dct_matrix(kBlock);
  const Tensor tt = t.transposed();
  Tensor plane(Shape::matrix(height, width));
  Tensor tile(Shape::matrix(kBlock, kBlock));
  std::size_t cursor = 0;
  for (std::size_t bi = 0; bi < height; bi += kBlock) {
    for (std::size_t bj = 0; bj < width; bj += kBlock) {
      for (std::size_t k = 0; k < 64; ++k) {
        tile.at(k) = static_cast<float>(coeffs[cursor + k]) *
                     static_cast<float>(table_[k]);
      }
      cursor += 64;
      const Tensor block = tensor::matmul(tensor::matmul(tt, tile), t);
      for (std::size_t i = 0; i < kBlock; ++i) {
        for (std::size_t j = 0; j < kBlock; ++j) {
          const float v = (block.at(i, j) + 128.0f) / 255.0f;
          plane.at(bi + i, bj + j) = std::clamp(v, 0.0f, 1.0f);
        }
      }
    }
  }
  return plane;
}

Tensor JpegLikeCodec::decompress_plane(const Stream& stream,
                                       std::size_t height,
                                       std::size_t width) const {
  BitReader reader(stream.bytes);
  const std::size_t table_size = reader.read_bits(16);
  std::map<std::uint16_t, std::uint8_t> lengths;
  for (std::size_t i = 0; i < table_size; ++i) {
    const std::uint16_t symbol =
        static_cast<std::uint16_t>(reader.read_bits(16));
    lengths[symbol] = static_cast<std::uint8_t>(reader.read_bits(8));
  }
  const HuffmanCoder coder(lengths);
  const std::size_t symbol_count = reader.read_bits(32);

  std::vector<std::int32_t> coeffs;
  coeffs.reserve(height * width);
  const auto zigzag = core::zigzag_flat(kBlock);
  std::vector<RleSymbol> block_symbols;
  for (std::size_t i = 0; i < symbol_count; ++i) {
    const std::uint16_t s = coder.decode(reader, 1).front();
    if (s == 0xffff) {
      // Block separator: materialize the block.
      const std::vector<std::int32_t> scanned =
          rle_decode(block_symbols, 64);
      std::vector<std::int32_t> block(64);
      for (std::size_t k = 0; k < 64; ++k) block[zigzag[k]] = scanned[k];
      coeffs.insert(coeffs.end(), block.begin(), block.end());
      block_symbols.clear();
      continue;
    }
    const std::uint16_t run = s >> 8;
    const std::uint8_t category = static_cast<std::uint8_t>(s & 0xff);
    std::int32_t value = 0;
    if (category > 0) {
      const bool negative = reader.read_bit();
      value = static_cast<std::int32_t>(reader.read_bits(category));
      if (negative) value = -value;
    }
    block_symbols.push_back({run, value});
  }
  return dequantize_plane(coeffs, height, width);
}

double JpegLikeCodec::achieved_ratio(const Stream& stream) {
  return static_cast<double>(stream.plane_values * sizeof(float)) /
         static_cast<double>(stream.bytes.size());
}

std::vector<double> nonzero_census(const std::vector<Tensor>& planes,
                                   int quality) {
  const JpegLikeCodec codec(quality);
  std::vector<double> counts(64, 0.0);
  std::size_t blocks = 0;
  for (const Tensor& plane : planes) {
    const std::vector<std::int32_t> coeffs = codec.quantize_plane(plane);
    const std::size_t plane_blocks = coeffs.size() / 64;
    for (std::size_t b = 0; b < plane_blocks; ++b) {
      for (std::size_t k = 0; k < 64; ++k) {
        if (coeffs[b * 64 + k] != 0) counts[k] += 1.0;
      }
    }
    blocks += plane_blocks;
  }
  if (blocks > 0) {
    for (double& c : counts) c /= static_cast<double>(blocks);
  }
  return counts;
}

}  // namespace aic::baseline
