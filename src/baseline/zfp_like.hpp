#pragma once

#include <cstdint>
#include <vector>

#include "core/codec.hpp"

namespace aic::baseline {

/// A from-scratch fixed-rate transform codec in the style of ZFP
/// (Lindstrom 2014), the comparator of Fig. 9 and the "future work"
/// block transform of §6.
///
/// Per 4×4 block of a plane:
///   1. block-float: values are scaled to signed fixed point sharing the
///      block's maximum exponent;
///   2. decorrelation: ZFP's integer lifting transform along rows then
///      columns;
///   3. embedded coding: coefficients (negabinary, total-sequency order)
///      are emitted bit-plane by bit-plane — each plane costs one
///      "any bits set?" flag plus 16 raw bits when nonzero — and the
///      stream is truncated at a fixed per-block bit budget set by the
///      requested rate.
///
/// The result is error-bounded-in-practice, fixed rate by construction,
/// and — like real ZFP — built on bit shifts that the AI accelerators'
/// PyTorch frontends do not expose, which is why the paper could only
/// run it on CPU.
class ZfpLikeCodec final : public core::Codec {
 public:
  /// `rate_bits_per_value`: compressed bits per scalar (fp32 is 32, so
  /// CR = 32 / rate). Valid range (0, 32].
  explicit ZfpLikeCodec(double rate_bits_per_value,
                        Context ctx = Context::process_default());

  std::string name() const override;
  std::string spec() const override;
  double compression_ratio() const override;
  tensor::Shape compressed_shape(const tensor::Shape& input) const override;
  tensor::Tensor compress(const tensor::Tensor& input) const override;
  tensor::Tensor decompress(const tensor::Tensor& packed,
                            const tensor::Shape& original) const override;

  /// Word-level API used by tests and the CPU comparison bench.
  std::vector<std::uint32_t> compress_plane(const tensor::Tensor& plane) const;
  tensor::Tensor decompress_plane(const std::vector<std::uint32_t>& words,
                                  std::size_t height,
                                  std::size_t width) const;

  std::size_t bits_per_block() const { return bits_per_block_; }

  /// Forward integer lifting transform on 4 values (ZFP fwd_lift);
  /// exposed for property tests.
  static void fwd_lift(std::int32_t* p, std::size_t stride);
  /// Inverse lifting transform (ZFP inv_lift).
  static void inv_lift(std::int32_t* p, std::size_t stride);

 private:
  double rate_;
  std::size_t bits_per_block_;  // fixed budget per 4×4 block
};

}  // namespace aic::baseline
