#include "baseline/huffman.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "io/error.hpp"

namespace aic::baseline {
namespace {

struct TreeNode {
  std::uint64_t weight;
  int symbol;  // -1 for internal
  int left = -1, right = -1;
};

/// Iterative depth-first walk assigning code lengths (explicit stack: a
/// pathological histogram can produce a tree as deep as the alphabet,
/// which would overflow the call stack recursively). Returns the
/// maximum depth encountered.
std::size_t assign_lengths(const std::vector<TreeNode>& nodes, int root,
                           std::map<std::uint16_t, std::uint8_t>& lengths) {
  std::size_t max_depth = 0;
  std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes[static_cast<std::size_t>(index)];
    if (node.symbol >= 0) {
      // A single-symbol alphabet still needs one bit.
      const std::size_t length = std::max<std::size_t>(depth, 1);
      max_depth = std::max(max_depth, length);
      if (length <= HuffmanCoder::kMaxCodeLength) {
        lengths[static_cast<std::uint16_t>(node.symbol)] =
            static_cast<std::uint8_t>(length);
      }
      continue;
    }
    stack.emplace_back(node.left, depth + 1);
    stack.emplace_back(node.right, depth + 1);
  }
  return max_depth;
}

/// Builds code lengths for the given weights; true when every length
/// fits kMaxCodeLength (lengths is only valid then).
bool build_lengths(const std::map<std::uint16_t, std::uint64_t>& weights,
                   std::map<std::uint16_t, std::uint8_t>& lengths) {
  std::vector<TreeNode> nodes;
  using Entry = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (const auto& [symbol, weight] : weights) {
    nodes.push_back({weight, static_cast<int>(symbol)});
    heap.emplace(weight, static_cast<int>(nodes.size()) - 1);
  }
  while (heap.size() > 1) {
    const auto [w1, i1] = heap.top();
    heap.pop();
    const auto [w2, i2] = heap.top();
    heap.pop();
    nodes.push_back({w1 + w2, -1, i1, i2});
    heap.emplace(w1 + w2, static_cast<int>(nodes.size()) - 1);
  }
  lengths.clear();
  return assign_lengths(nodes, heap.top().second, lengths) <=
         HuffmanCoder::kMaxCodeLength;
}

}  // namespace

HuffmanCoder::HuffmanCoder(const std::vector<std::uint16_t>& symbols) {
  if (symbols.empty()) {
    throw std::invalid_argument("HuffmanCoder: empty symbol stream");
  }
  std::map<std::uint16_t, std::uint64_t> histogram;
  for (std::uint16_t s : symbols) ++histogram[s];

  // A sufficiently skewed histogram (Fibonacci-like weights) produces
  // code lengths beyond kMaxCodeLength, which would overflow the u32
  // canonical codes. Rebalance by halving the weights (flooring at 1)
  // until the tree fits: each pass compresses the weight ratio, and
  // all-equal weights bound the depth at ceil(log2(alphabet)) <= 16.
  while (!build_lengths(histogram, lengths_)) {
    for (auto& [symbol, weight] : histogram) {
      weight = weight / 2 + 1;
    }
  }
  build_canonical_codes();
}

HuffmanCoder::HuffmanCoder(
    const std::map<std::uint16_t, std::uint8_t>& lengths)
    : lengths_(lengths) {
  // This constructor consumes length tables shipped inside compressed
  // streams — untrusted input, validated before any code is derived.
  if (lengths_.empty()) {
    throw std::invalid_argument("HuffmanCoder: empty length table");
  }
  std::uint64_t kraft = 0;
  for (const auto& [symbol, length] : lengths_) {
    if (length == 0 || length > kMaxCodeLength) {
      io::raise_corrupt(io::CorruptKind::kBadCodeTable,
                        "HuffmanCoder: code length " +
                            std::to_string(length) + " for symbol " +
                            std::to_string(symbol) + " outside [1, " +
                            std::to_string(kMaxCodeLength) + "]");
    }
    kraft += std::uint64_t{1} << (kMaxCodeLength - length);
  }
  // Kraft inequality: an over-subscribed table has no prefix-free code
  // assignment and would overflow the canonical code enumeration.
  if (kraft > (std::uint64_t{1} << kMaxCodeLength)) {
    io::raise_corrupt(io::CorruptKind::kBadCodeTable,
                      "HuffmanCoder: length table violates the Kraft "
                      "inequality (over-subscribed)");
  }
  build_canonical_codes();
}

void HuffmanCoder::build_canonical_codes() {
  // Canonical ordering: by (length, symbol).
  std::vector<std::pair<std::uint8_t, std::uint16_t>> order;
  order.reserve(lengths_.size());
  for (const auto& [symbol, length] : lengths_) {
    order.emplace_back(length, symbol);
  }
  std::sort(order.begin(), order.end());

  // 64-bit accumulator: with validated lengths the code always fits its
  // length, but the shift itself must not be UB while we check that.
  std::uint64_t code = 0;
  std::uint8_t previous_length = order.front().first;
  for (const auto& [length, symbol] : order) {
    code <<= (length - previous_length);
    previous_length = length;
    if (code >> length != 0) {
      io::raise_corrupt(io::CorruptKind::kBadCodeTable,
                        "HuffmanCoder: canonical code overflows " +
                            std::to_string(length) + " bits");
    }
    codes_[symbol] = static_cast<std::uint32_t>(code);
    decode_[{length, static_cast<std::uint32_t>(code)}] = symbol;
    ++code;
  }

  const std::uint16_t max_symbol = lengths_.rbegin()->first;
  encode_code_.assign(std::size_t{max_symbol} + 1, 0);
  encode_len_.assign(std::size_t{max_symbol} + 1, 0);
  for (const auto& [symbol, length] : lengths_) {
    encode_code_[symbol] = codes_[symbol];
    encode_len_[symbol] = length;
  }
  build_decode_lut();
}

void HuffmanCoder::build_decode_lut() {
  // Pass 1: every window whose top bits spell a whole code of length
  // <= kLutBits resolves its first symbol. Canonical codes of length L
  // own the contiguous window range [code << (W-L), (code+1) << (W-L)).
  decode_lut_.assign(std::size_t{1} << kLutBits, LutEntry{});
  for (const auto& [key, symbol] : decode_) {
    const auto& [length, code] = key;
    if (length > kLutBits) continue;
    const std::size_t shift = kLutBits - length;
    const std::size_t first = std::size_t{code} << shift;
    const std::size_t last = first + (std::size_t{1} << shift);
    for (std::size_t window = first; window < last; ++window) {
      decode_lut_[window].symbols[0] = symbol;
      decode_lut_[window].count = 1;
      decode_lut_[window].bits = length;
    }
  }
  // Pass 2: when the remaining window bits start another whole code, the
  // same lookup yields a second symbol. The sub-window zero-pads the bits
  // beyond the window, which is safe exactly when the second code fits in
  // the leftover width (its LUT entry then depends only on known bits).
  // The lookup goes against a snapshot of pass 1: resolving through the
  // table being mutated could hit an already-upgraded two-symbol entry
  // and record its combined bit length against a single symbol.
  const std::vector<LutEntry> single = decode_lut_;
  const std::size_t mask = (std::size_t{1} << kLutBits) - 1;
  for (std::size_t window = 0; window < decode_lut_.size(); ++window) {
    LutEntry& entry = decode_lut_[window];
    if (entry.count != 1) continue;
    const std::size_t first_bits = entry.bits;
    const LutEntry& next = single[(window << first_bits) & mask];
    if (next.count == 1 && first_bits + next.bits <= kLutBits) {
      entry.symbols[1] = next.symbols[0];
      entry.count = 2;
      entry.bits = static_cast<std::uint8_t>(first_bits + next.bits);
    }
  }
}

void HuffmanCoder::encode(const std::vector<std::uint16_t>& symbols,
                          BitWriter& writer) const {
  for (std::uint16_t s : symbols) {
    if (s >= encode_len_.size() || encode_len_[s] == 0) {
      throw std::invalid_argument("HuffmanCoder: symbol not in code");
    }
    writer.write_bits(encode_code_[s], encode_len_[s]);
  }
}

std::vector<std::uint16_t> HuffmanCoder::decode(BitReader& reader,
                                                std::size_t count) const {
  // Every symbol consumes at least one bit, so a count beyond the
  // remaining bits can never be satisfied — reject before reserving.
  if (count > reader.bits_remaining()) {
    io::raise_corrupt(io::CorruptKind::kTruncated,
                      "HuffmanCoder: " + std::to_string(count) +
                          " symbols requested but only " +
                          std::to_string(reader.bits_remaining()) +
                          " bits remain");
  }
  std::vector<std::uint16_t> symbols;
  symbols.reserve(count);
  while (symbols.size() < count) {
    // Fast path: one peek of the LUT window resolves up to two symbols.
    // Only taken when the stream really holds kLutBits more bits (the
    // peek zero-pads past the end, which must never decode as data) and
    // when every resolved symbol is still wanted.
    if (reader.bits_remaining() >= kLutBits) {
      const LutEntry& entry = decode_lut_[reader.peek_bits(kLutBits)];
      if (entry.count != 0 && symbols.size() + entry.count <= count) {
        reader.skip_bits(entry.bits);
        symbols.push_back(entry.symbols[0]);
        if (entry.count == 2) symbols.push_back(entry.symbols[1]);
        continue;
      }
    }
    // Exact bit-walk: codes longer than the window, the stream tail, and
    // the final symbol when the LUT entry would overshoot `count`.
    std::uint32_t code = 0;
    std::uint8_t length = 0;
    for (;;) {
      code = (code << 1) | static_cast<std::uint32_t>(reader.read_bit());
      ++length;
      const auto it = decode_.find({length, code});
      if (it != decode_.end()) {
        symbols.push_back(it->second);
        break;
      }
      if (length >= kMaxCodeLength) {
        io::raise_corrupt(io::CorruptKind::kBadSymbol,
                          "HuffmanCoder: bitstream walks past the longest "
                          "code without matching a symbol");
      }
    }
  }
  return symbols;
}

std::size_t HuffmanCoder::encoded_bits(
    const std::vector<std::uint16_t>& symbols) const {
  std::size_t bits = 0;
  for (std::uint16_t s : symbols) {
    if (s >= encode_len_.size() || encode_len_[s] == 0) {
      throw std::out_of_range("HuffmanCoder: symbol not in code");
    }
    bits += encode_len_[s];
  }
  return bits;
}

}  // namespace aic::baseline
