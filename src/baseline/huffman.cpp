#include "baseline/huffman.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace aic::baseline {
namespace {

struct TreeNode {
  std::uint64_t weight;
  int symbol;  // -1 for internal
  int left = -1, right = -1;
};

// Depth-first walk assigning code lengths.
void assign_lengths(const std::vector<TreeNode>& nodes, int index,
                    std::uint8_t depth,
                    std::map<std::uint16_t, std::uint8_t>& lengths) {
  const TreeNode& node = nodes[static_cast<std::size_t>(index)];
  if (node.symbol >= 0) {
    // A single-symbol alphabet still needs one bit.
    lengths[static_cast<std::uint16_t>(node.symbol)] =
        std::max<std::uint8_t>(depth, 1);
    return;
  }
  assign_lengths(nodes, node.left, depth + 1, lengths);
  assign_lengths(nodes, node.right, depth + 1, lengths);
}

}  // namespace

HuffmanCoder::HuffmanCoder(const std::vector<std::uint16_t>& symbols) {
  if (symbols.empty()) {
    throw std::invalid_argument("HuffmanCoder: empty symbol stream");
  }
  std::map<std::uint16_t, std::uint64_t> histogram;
  for (std::uint16_t s : symbols) ++histogram[s];

  std::vector<TreeNode> nodes;
  using Entry = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (const auto& [symbol, weight] : histogram) {
    nodes.push_back({weight, static_cast<int>(symbol)});
    heap.emplace(weight, static_cast<int>(nodes.size()) - 1);
  }
  while (heap.size() > 1) {
    const auto [w1, i1] = heap.top();
    heap.pop();
    const auto [w2, i2] = heap.top();
    heap.pop();
    nodes.push_back({w1 + w2, -1, i1, i2});
    heap.emplace(w1 + w2, static_cast<int>(nodes.size()) - 1);
  }
  assign_lengths(nodes, heap.top().second, 0, lengths_);
  build_canonical_codes();
}

HuffmanCoder::HuffmanCoder(
    const std::map<std::uint16_t, std::uint8_t>& lengths)
    : lengths_(lengths) {
  if (lengths_.empty()) {
    throw std::invalid_argument("HuffmanCoder: empty length table");
  }
  build_canonical_codes();
}

void HuffmanCoder::build_canonical_codes() {
  // Canonical ordering: by (length, symbol).
  std::vector<std::pair<std::uint8_t, std::uint16_t>> order;
  order.reserve(lengths_.size());
  for (const auto& [symbol, length] : lengths_) {
    order.emplace_back(length, symbol);
  }
  std::sort(order.begin(), order.end());

  std::uint32_t code = 0;
  std::uint8_t previous_length = order.front().first;
  for (const auto& [length, symbol] : order) {
    code <<= (length - previous_length);
    previous_length = length;
    codes_[symbol] = code;
    decode_[{length, code}] = symbol;
    ++code;
  }
}

void HuffmanCoder::encode(const std::vector<std::uint16_t>& symbols,
                          BitWriter& writer) const {
  for (std::uint16_t s : symbols) {
    const auto it = codes_.find(s);
    if (it == codes_.end()) {
      throw std::invalid_argument("HuffmanCoder: symbol not in code");
    }
    writer.write_bits(it->second, lengths_.at(s));
  }
}

std::vector<std::uint16_t> HuffmanCoder::decode(BitReader& reader,
                                                std::size_t count) const {
  std::vector<std::uint16_t> symbols;
  symbols.reserve(count);
  while (symbols.size() < count) {
    std::uint32_t code = 0;
    std::uint8_t length = 0;
    for (;;) {
      code = (code << 1) | static_cast<std::uint32_t>(reader.read_bit());
      ++length;
      const auto it = decode_.find({length, code});
      if (it != decode_.end()) {
        symbols.push_back(it->second);
        break;
      }
      if (length > 32) {
        throw std::invalid_argument("HuffmanCoder: invalid bitstream");
      }
    }
  }
  return symbols;
}

std::size_t HuffmanCoder::encoded_bits(
    const std::vector<std::uint16_t>& symbols) const {
  std::size_t bits = 0;
  for (std::uint16_t s : symbols) bits += lengths_.at(s);
  return bits;
}

}  // namespace aic::baseline
