#include "baseline/sz_like.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "baseline/bitstream.hpp"
#include "baseline/huffman.hpp"

namespace aic::baseline {

using tensor::Shape;
using tensor::Tensor;

namespace {

// Quantization codes are centred at kZeroCode; code 0 is reserved for
// "unpredictable" (verbatim fp32 follows in the side stream).
constexpr std::int32_t kZeroCode = 32768;
constexpr std::int32_t kMaxCode = 65535;

float lorenzo(const Tensor& plane, std::size_t i, std::size_t j) {
  const float left = j > 0 ? plane.at(i, j - 1) : 0.0f;
  const float up = i > 0 ? plane.at(i - 1, j) : 0.0f;
  const float diag = (i > 0 && j > 0) ? plane.at(i - 1, j - 1) : 0.0f;
  return left + up - diag;
}

}  // namespace

SzLikeCodec::SzLikeCodec(double error_bound) : error_bound_(error_bound) {
  if (!(error_bound_ > 0.0)) {
    throw std::invalid_argument("SzLikeCodec: error bound must be positive");
  }
}

SzLikeCodec::Stream SzLikeCodec::compress_plane(const Tensor& plane) const {
  if (plane.shape().rank() != 2) {
    throw std::invalid_argument("SzLikeCodec: plane must be rank 2");
  }
  const std::size_t h = plane.shape()[0];
  const std::size_t w = plane.shape()[1];
  const double bin = 2.0 * error_bound_;

  Tensor reconstructed(plane.shape());
  std::vector<std::uint16_t> codes;
  codes.reserve(h * w);
  std::vector<float> verbatim;

  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      const float predicted = lorenzo(reconstructed, i, j);
      const double residual =
          static_cast<double>(plane.at(i, j)) - predicted;
      const std::int64_t q = std::llround(residual / bin);
      const std::int64_t code = q + kZeroCode;
      if (code < 1 || code > kMaxCode) {
        codes.push_back(0);  // unpredictable marker
        verbatim.push_back(plane.at(i, j));
        reconstructed.at(i, j) = plane.at(i, j);
      } else {
        codes.push_back(static_cast<std::uint16_t>(code));
        reconstructed.at(i, j) =
            predicted + static_cast<float>(static_cast<double>(q) * bin);
      }
    }
  }

  // Entropy stage: canonical Huffman over the code histogram.
  const HuffmanCoder coder(codes);
  BitWriter writer;
  writer.write_bits(static_cast<std::uint32_t>(coder.lengths().size()), 16);
  for (const auto& [symbol, length] : coder.lengths()) {
    writer.write_bits(symbol, 16);
    writer.write_bits(length, 8);
  }
  writer.write_bits(static_cast<std::uint32_t>(codes.size()), 32);
  coder.encode(codes, writer);
  writer.write_bits(static_cast<std::uint32_t>(verbatim.size()), 32);
  for (float v : verbatim) {
    writer.write_bits(std::bit_cast<std::uint32_t>(v), 32);
  }

  Stream stream;
  stream.values = h * w;
  stream.unpredictable = verbatim.size();
  stream.bytes = writer.finish();
  return stream;
}

Tensor SzLikeCodec::decompress_plane(const Stream& stream, std::size_t height,
                                     std::size_t width) const {
  BitReader reader(stream.bytes);
  const std::size_t table_size = reader.read_bits(16);
  std::map<std::uint16_t, std::uint8_t> lengths;
  for (std::size_t i = 0; i < table_size; ++i) {
    const std::uint16_t symbol =
        static_cast<std::uint16_t>(reader.read_bits(16));
    lengths[symbol] = static_cast<std::uint8_t>(reader.read_bits(8));
  }
  const HuffmanCoder coder(lengths);
  const std::size_t code_count = reader.read_bits(32);
  if (code_count != height * width) {
    throw std::invalid_argument("SzLikeCodec: code count mismatch");
  }
  const std::vector<std::uint16_t> codes = coder.decode(reader, code_count);
  const std::size_t verbatim_count = reader.read_bits(32);
  std::vector<float> verbatim;
  verbatim.reserve(verbatim_count);
  for (std::size_t i = 0; i < verbatim_count; ++i) {
    verbatim.push_back(std::bit_cast<float>(reader.read_bits(32)));
  }

  const double bin = 2.0 * error_bound_;
  Tensor plane(Shape::matrix(height, width));
  std::size_t cursor = 0;
  std::size_t verbatim_cursor = 0;
  for (std::size_t i = 0; i < height; ++i) {
    for (std::size_t j = 0; j < width; ++j) {
      const std::uint16_t code = codes[cursor++];
      if (code == 0) {
        plane.at(i, j) = verbatim.at(verbatim_cursor++);
      } else {
        const std::int64_t q =
            static_cast<std::int64_t>(code) - kZeroCode;
        plane.at(i, j) = lorenzo(plane, i, j) +
                         static_cast<float>(static_cast<double>(q) * bin);
      }
    }
  }
  return plane;
}

double SzLikeCodec::achieved_ratio(const Stream& stream) {
  return static_cast<double>(stream.values * sizeof(float)) /
         static_cast<double>(stream.bytes.size());
}

Tensor SzLikeCodec::round_trip(const Tensor& input, double* ratio_out) const {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("SzLikeCodec: input must be BCHW");
  }
  Tensor out(input.shape());
  double ratio_acc = 0.0;
  std::size_t planes = 0;
  for (std::size_t b = 0; b < input.shape()[0]; ++b) {
    for (std::size_t c = 0; c < input.shape()[1]; ++c) {
      const Stream stream = compress_plane(input.slice_plane(b, c));
      ratio_acc += achieved_ratio(stream);
      ++planes;
      out.set_plane(b, c,
                    decompress_plane(stream, input.shape()[2],
                                     input.shape()[3]));
    }
  }
  if (ratio_out != nullptr && planes > 0) {
    *ratio_out = ratio_acc / static_cast<double>(planes);
  }
  return out;
}

}  // namespace aic::baseline
