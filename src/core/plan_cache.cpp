#include "core/plan_cache.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "runtime/env.hpp"
#include "runtime/timer.hpp"

namespace aic::core {

namespace {

constexpr std::size_t kDefaultBudgetBytes = 256ull << 20;  // 256 MiB

std::size_t resolve_budget(const Context& ctx) {
  const std::size_t requested = ctx.plan_cache_bytes();
  if (requested != Context::kPlanCacheBytesFromEnv) return requested;
  return runtime::env_size_t("AIC_PLAN_CACHE_BYTES", kDefaultBudgetBytes);
}

}  // namespace

PlanCache& PlanCache::of(const Context& ctx) {
  const std::shared_ptr<void> cell = ctx.slot(
      Context::Slot::kPlanCache, [&ctx]() -> std::shared_ptr<void> {
        // Metrics rule: the process default keeps the historical
        // unprefixed series; sessions publish only when labeled, so
        // anonymous scratch contexts don't pollute the registry.
        const bool publish =
            ctx.is_process_default() || !ctx.obs_prefix().empty();
        return std::make_shared<PlanCache>(resolve_budget(ctx), publish,
                                           ctx.obs_prefix());
      });
  return *static_cast<PlanCache*>(cell.get());
}

PlanCache::PlanCache(std::size_t byte_budget, bool publish_metrics,
                     const std::string& metric_prefix)
    : byte_budget_(byte_budget), publish_metrics_(publish_metrics) {
  if (publish_metrics_) {
    obs::Registry& registry = obs::Registry::global();
    instruments_.hit = &registry.counter(metric_prefix + "plan_cache.hit");
    instruments_.miss = &registry.counter(metric_prefix + "plan_cache.miss");
    instruments_.build_count =
        &registry.counter(metric_prefix + "plan_cache.build_count");
    instruments_.eviction =
        &registry.counter(metric_prefix + "plan_cache.eviction");
    instruments_.build_ns =
        &registry.histogram(metric_prefix + "plan_cache.build_ns");
    instruments_.resident_bytes =
        &registry.gauge(metric_prefix + "plan_cache.resident_bytes");
  }
}

std::shared_ptr<const CodecPlan> PlanCache::resolve(const PlanKey& key,
                                                    const BuildFn& build) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    if (publish_metrics_) instruments_.hit->add();
    touch(it->second);
    return it->second.plan;
  }

  ++stats_.misses;
  if (publish_metrics_) instruments_.miss->add();

  // Built under the lock: a key is compiled exactly once per cache,
  // which keeps plan_cache.build_count deterministic (it equals the
  // number of distinct keys ever requested) and spares concurrent
  // resolvers of the same key from duplicating the operand matmuls.
  // Nested resolves (partial → chunk) re-enter through the recursive
  // mutex.
  runtime::Timer timer;
  std::shared_ptr<const CodecPlan> plan =
      build ? build() : build_core_plan(key, *this);
  const std::uint64_t nanos = timer.nanos();
  if (!plan) {
    throw std::runtime_error("PlanCache: builder returned null for key " +
                             key.to_string());
  }
  ++stats_.builds;
  if (publish_metrics_) {
    instruments_.build_count->add();
    instruments_.build_ns->record(nanos);
  }

  // A nested build may have inserted this key already (a composite plan
  // whose builder resolves its own key would); keep the first insert.
  auto [pos, inserted] = entries_.try_emplace(key);
  if (!inserted) {
    touch(pos->second);
    return pos->second.plan;
  }
  lru_.push_front(key);
  pos->second = Entry{plan, plan->resident_bytes(), lru_.begin()};
  resident_bytes_ += pos->second.bytes;
  evict_to_budget();
  publish_resident_locked();
  return plan;
}

void PlanCache::touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
  entry.lru_it = lru_.begin();
}

void PlanCache::evict_to_budget() {
  if (byte_budget_ == 0) return;
  // Never evict the most recently used entry — the caller is about to
  // execute it; an over-budget single plan simply lives alone.
  while (resident_bytes_ > byte_budget_ && entries_.size() > 1) {
    const PlanKey victim = lru_.back();
    auto it = entries_.find(victim);
    resident_bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
    if (publish_metrics_) instruments_.eviction->add();
  }
}

void PlanCache::publish_resident_locked() {
  if (publish_metrics_) {
    instruments_.resident_bytes->set(static_cast<double>(resident_bytes_));
  }
}

void PlanCache::set_byte_budget(std::size_t bytes) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  byte_budget_ = bytes;
  evict_to_budget();
  publish_resident_locked();
}

std::size_t PlanCache::byte_budget() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return byte_budget_;
}

std::size_t PlanCache::resident_bytes() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return resident_bytes_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return entries_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  publish_resident_locked();
}

PlanCache::Snapshot PlanCache::snapshot() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  Snapshot snap = stats_;
  snap.resident_bytes = resident_bytes_;
  snap.entries = entries_.size();
  return snap;
}

std::shared_ptr<const DctChopPlan> resolve_dct_chop_plan(
    const Context& ctx, std::size_t height, std::size_t width, std::size_t cf,
    std::size_t block, TransformKind transform) {
  const PlanKey key = dct_chop_plan_key(height, width, cf, block, transform);
  return std::static_pointer_cast<const DctChopPlan>(
      PlanCache::of(ctx).resolve(key));
}

std::shared_ptr<const PartialSerialPlan> resolve_partial_serial_plan(
    const Context& ctx, std::size_t height, std::size_t width, std::size_t cf,
    std::size_t block, TransformKind transform, std::size_t subdivision) {
  const PlanKey key = partial_serial_plan_key(height, width, cf, block,
                                              transform, subdivision);
  return std::static_pointer_cast<const PartialSerialPlan>(
      PlanCache::of(ctx).resolve(key));
}

std::shared_ptr<const TrianglePlan> resolve_triangle_plan(
    const Context& ctx, std::size_t height, std::size_t width, std::size_t cf,
    std::size_t block, TransformKind transform) {
  const PlanKey key = triangle_plan_key(height, width, cf, block, transform);
  return std::static_pointer_cast<const TrianglePlan>(
      PlanCache::of(ctx).resolve(key));
}

}  // namespace aic::core
