#include "core/transforms.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "core/dct.hpp"

namespace aic::core {

using tensor::Shape;
using tensor::Tensor;

std::string transform_name(TransformKind kind) {
  switch (kind) {
    case TransformKind::kDct2: return "dct";
    case TransformKind::kWalshHadamard: return "wht";
    case TransformKind::kDst2: return "dst2";
  }
  return "?";
}

Tensor walsh_hadamard_matrix(std::size_t n) {
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument(
        "walsh_hadamard_matrix: n must be a power of two");
  }
  // Sylvester construction, then sequency (sign-change) ordering.
  std::vector<std::vector<int>> h = {{1}};
  for (std::size_t size = 1; size < n; size *= 2) {
    std::vector<std::vector<int>> next(2 * size,
                                       std::vector<int>(2 * size));
    for (std::size_t i = 0; i < size; ++i) {
      for (std::size_t j = 0; j < size; ++j) {
        next[i][j] = h[i][j];
        next[i][j + size] = h[i][j];
        next[i + size][j] = h[i][j];
        next[i + size][j + size] = -h[i][j];
      }
    }
    h = std::move(next);
  }
  // Order rows by sequency so low indices = low "frequency".
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  auto sign_changes = [&](std::size_t row) {
    std::size_t changes = 0;
    for (std::size_t j = 1; j < n; ++j) {
      if (h[row][j] != h[row][j - 1]) ++changes;
    }
    return changes;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sign_changes(a) < sign_changes(b);
  });

  Tensor t(Shape::matrix(n, n));
  const float scale = 1.0f / std::sqrt(static_cast<float>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      t.at(i, j) = scale * static_cast<float>(h[order[i]][j]);
    }
  }
  return t;
}

Tensor dst2_matrix(std::size_t n) {
  if (n == 0) throw std::invalid_argument("dst2_matrix: n must be positive");
  // Orthonormal DST-II: T[i][j] = s(i)·sqrt(2/N)·sin(pi(i+1)(2j+1)/2N),
  // with the last row scaled by 1/sqrt(2).
  Tensor t(Shape::matrix(n, n));
  const double scale = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const double row_scale =
        (i == n - 1) ? scale / std::numbers::sqrt2 : scale;
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = std::numbers::pi * (i + 1.0) * (2.0 * j + 1.0) /
                           (2.0 * static_cast<double>(n));
      t.at(i, j) = static_cast<float>(row_scale * std::sin(angle));
    }
  }
  return t;
}

Tensor transform_matrix(TransformKind kind, std::size_t n) {
  switch (kind) {
    case TransformKind::kDct2: return dct_matrix(n);
    case TransformKind::kWalshHadamard: return walsh_hadamard_matrix(n);
    case TransformKind::kDst2: return dst2_matrix(n);
  }
  throw std::invalid_argument("unknown transform");
}

Tensor block_diagonal_transform(TransformKind kind, std::size_t n,
                                std::size_t block) {
  if (block == 0 || n % block != 0) {
    throw std::invalid_argument(
        "block_diagonal_transform: n must be a positive multiple of block");
  }
  const Tensor t = transform_matrix(kind, block);
  Tensor t_l(Shape::matrix(n, n));
  for (std::size_t base = 0; base < n; base += block) {
    for (std::size_t i = 0; i < block; ++i) {
      for (std::size_t j = 0; j < block; ++j) {
        t_l.at(base + i, base + j) = t.at(i, j);
      }
    }
  }
  return t_l;
}

}  // namespace aic::core
