#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "core/codec_stats.hpp"
#include "runtime/context.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace aic::core {

/// A fixed-rate lossy codec over BCHW tensors.
///
/// All codecs in this library honour the paper's compile-time-shape
/// constraint (§3.1): for a given codec configuration, the compressed
/// shape is a pure function of the input shape, so `compressed_shape`
/// can be evaluated before any data exists ("at compile time") and never
/// varies sample to sample.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Human-readable codec identifier (e.g. "dct+chop(cf=4)").
  virtual std::string name() const = 0;

  /// Canonical factory spec string (e.g. "dctchop:cf=4,block=8"): feeding
  /// it back through core::CodecFactory reconstructs an equivalent codec.
  virtual std::string spec() const = 0;

  /// Nominal compression ratio (uncompressed bytes / compressed bytes).
  virtual double compression_ratio() const = 0;

  /// Shape of compress() output for a given input shape. Throws when the
  /// input shape is unsupported (wrong rank, not block-divisible, ...).
  virtual tensor::Shape compressed_shape(const tensor::Shape& input) const = 0;

  /// Compresses a BCHW tensor into the codec's packed representation.
  virtual tensor::Tensor compress(const tensor::Tensor& input) const = 0;

  /// Reconstructs a BCHW tensor; `original` is the uncompressed shape
  /// (codecs are fixed-rate, so the shape fully determines the layout).
  virtual tensor::Tensor decompress(const tensor::Tensor& packed,
                                    const tensor::Shape& original) const = 0;

  /// Allocation-reusing variants: write the result into `out`, reusing
  /// its storage when it already has the right shape. The base
  /// implementations fall back to the allocating calls; codecs on the
  /// steady-state serving path (DCT+Chop) override them to execute their
  /// plan directly into `out`, so a caller that holds its output tensors
  /// across iterations performs no per-call payload allocation.
  virtual void compress_into(const tensor::Tensor& input,
                             tensor::Tensor& out) const {
    out = compress(input);
  }
  virtual void decompress_into(const tensor::Tensor& packed,
                               const tensor::Shape& original,
                               tensor::Tensor& out) const {
    out = decompress(packed, original);
  }

  /// Convenience: compress immediately followed by decompress, the
  /// transformation the paper applies to every training batch (§4.1).
  tensor::Tensor round_trip(const tensor::Tensor& input) const {
    return decompress(compress(input), input.shape());
  }

  /// Cumulative per-codec counters (calls, planes, Eq. 5/7 FLOPs, bytes,
  /// wall time). Instrumented codecs update these inside compress /
  /// decompress; the reference returned is mutable so callers can reset
  /// between measurement windows.
  CodecStats& stats() const noexcept { return stats_; }

  /// The session this codec resolves plans in, executes on, and reports
  /// metrics under. Copies of a codec's context refer to the same session.
  const Context& context() const noexcept { return ctx_; }

 protected:
  Codec() = default;
  explicit Codec(Context ctx) : ctx_(std::move(ctx)) {}

  Context ctx_;
  mutable CodecStats stats_;
};

using CodecPtr = std::shared_ptr<const Codec>;

}  // namespace aic::core
