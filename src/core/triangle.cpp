#include "core/triangle.hpp"

#include <sstream>
#include <stdexcept>

#include "core/zigzag.hpp"

namespace aic::core {

using tensor::Shape;
using tensor::Tensor;

TriangleCodec::TriangleCodec(DctChopConfig config)
    : inner_(std::make_unique<DctChopCodec>(config)) {
  const auto& c = inner_->config();
  per_block_ = c.cf * (c.cf + 1) / 2;
  const std::size_t blocks_h = c.height / c.block;
  const std::size_t blocks_w = c.width / c.block;
  blocks_ = blocks_h * blocks_w;
  chopped_h_ = c.cf * blocks_h;
  chopped_w_ = c.cf * blocks_w;

  // Compile-time index computation (§3.5.2): per-block triangle offsets,
  // replicated at each block's base position in the chopped plane.
  const std::vector<std::size_t> block_offsets =
      triangle_indices(c.cf, chopped_w_);
  indices_.reserve(blocks_ * per_block_);
  for (std::size_t bi = 0; bi < blocks_h; ++bi) {
    for (std::size_t bj = 0; bj < blocks_w; ++bj) {
      const std::size_t base = bi * c.cf * chopped_w_ + bj * c.cf;
      for (std::size_t offset : block_offsets) {
        indices_.push_back(base + offset);
      }
    }
  }
}

std::string TriangleCodec::name() const {
  std::ostringstream out;
  out << "dct+chop+sg(cf=" << inner_->config().cf << ")";
  return out.str();
}

double TriangleCodec::compression_ratio() const {
  return triangle_ratio(inner_->config().cf, inner_->config().block);
}

Shape TriangleCodec::compressed_shape(const Shape& input) const {
  // Validates resolution via the inner codec.
  (void)inner_->compressed_shape(input);
  return Shape::bchw(input[0], input[1], blocks_, per_block_);
}

Tensor TriangleCodec::compress(const Tensor& input) const {
  const Tensor chopped = inner_->compress(input);
  Tensor out(compressed_shape(input.shape()));
  const std::size_t batch = input.shape()[0];
  const std::size_t channels = input.shape()[1];
  const std::size_t plane = chopped_h_ * chopped_w_;
  const float* src = chopped.raw();
  float* dst = out.raw();
  const std::size_t packed_plane = blocks_ * per_block_;
  for (std::size_t p = 0; p < batch * channels; ++p) {
    const float* plane_src = src + p * plane;
    float* plane_dst = dst + p * packed_plane;
    // torch.gather: packed[k] = chopped[index[k]]
    for (std::size_t k = 0; k < indices_.size(); ++k) {
      plane_dst[k] = plane_src[indices_[k]];
    }
  }
  return out;
}

Tensor TriangleCodec::decompress(const Tensor& packed,
                                 const Shape& original) const {
  if (packed.shape() != compressed_shape(original)) {
    throw std::invalid_argument("TriangleCodec: packed shape mismatch");
  }
  const std::size_t batch = original[0];
  const std::size_t channels = original[1];
  Tensor chopped(
      Shape::bchw(batch, channels, chopped_h_, chopped_w_));
  const std::size_t plane = chopped_h_ * chopped_w_;
  const std::size_t packed_plane = blocks_ * per_block_;
  const float* src = packed.raw();
  float* dst = chopped.raw();
  for (std::size_t p = 0; p < batch * channels; ++p) {
    const float* plane_src = src + p * packed_plane;
    float* plane_dst = dst + p * plane;
    // torch.scatter: chopped[index[k]] = packed[k]; untouched positions
    // stay zero (they were chopped away).
    for (std::size_t k = 0; k < indices_.size(); ++k) {
      plane_dst[indices_[k]] = plane_src[k];
    }
  }
  return inner_->decompress(chopped, original);
}

}  // namespace aic::core
