#include "core/triangle.hpp"

#include <sstream>
#include <stdexcept>

#include "core/plan_cache.hpp"
#include "io/error.hpp"
#include "obs/trace.hpp"
#include "runtime/timer.hpp"

namespace aic::core {

using tensor::Shape;
using tensor::Tensor;

TriangleCodec::TriangleCodec(DctChopConfig config, Context ctx)
    : Codec(std::move(ctx)),
      config_(config),
      inner_(std::make_unique<DctChopCodec>(config, ctx_)) {
  per_block_ = config_.cf * (config_.cf + 1) / 2;
  if (config_.height != 0 || config_.width != 0) {
    pinned_ = resolve_triangle_plan(ctx_, config_.height, config_.width,
                                    config_.cf, config_.block,
                                    config_.transform);
  }
}

std::shared_ptr<const TrianglePlan> TriangleCodec::plan_for(
    std::size_t height, std::size_t width) const {
  if (pinned_) {
    if (height != config_.height || width != config_.width) {
      throw std::invalid_argument(
          "TriangleCodec: codec compiled for " +
          std::to_string(config_.height) + "x" +
          std::to_string(config_.width) + ", got " + std::to_string(height) +
          "x" + std::to_string(width));
    }
    return pinned_;
  }
  return resolve_triangle_plan(ctx_, height, width, config_.cf, config_.block,
                               config_.transform);
}

const std::vector<std::size_t>& TriangleCodec::plane_indices() const {
  if (!pinned_) {
    throw std::logic_error(
        "TriangleCodec::plane_indices: shape-agnostic codec has one index "
        "table per resolution");
  }
  return pinned_->plane_indices();
}

std::string TriangleCodec::name() const {
  std::ostringstream out;
  out << "dct+chop+sg(cf=" << config_.cf << ")";
  return out.str();
}

std::string TriangleCodec::spec() const {
  std::ostringstream out;
  out << "triangle:cf=" << config_.cf << ",block=" << config_.block;
  if (config_.transform != TransformKind::kDct2) {
    out << ",transform=" << transform_name(config_.transform);
  }
  if (pinned_) {
    out << ",h=" << config_.height << ",w=" << config_.width;
  }
  return out.str();
}

double TriangleCodec::compression_ratio() const {
  return triangle_ratio(config_.cf, config_.block);
}

Shape TriangleCodec::compressed_shape(const Shape& input) const {
  // Validates rank, resolution and block-divisibility via the inner codec.
  (void)inner_->compressed_shape(input);
  const std::size_t blocks =
      (input[2] / config_.block) * (input[3] / config_.block);
  return Shape::bchw(input[0], input[1], blocks, per_block_);
}

Tensor TriangleCodec::compress(const Tensor& input) const {
  AIC_TRACE_SCOPE("sg.compress");
  Context::PoolScope pool_scope(ctx_);
  runtime::Timer timer;
  Tensor out(compressed_shape(input.shape()));
  const std::shared_ptr<const TrianglePlan> plan =
      plan_for(input.shape()[2], input.shape()[3]);
  plan->compress_into(input, out);
  const std::size_t planes = input.shape()[0] * input.shape()[1];
  stats_.record_compress(planes,
                         planes * DctChopCodec::flops_compress_hw(
                                      input.shape()[2], input.shape()[3],
                                      config_.cf, config_.block),
                         input.size_bytes(), out.size_bytes(), timer.nanos());
  return out;
}

Tensor TriangleCodec::decompress(const Tensor& packed,
                                 const Shape& original) const {
  AIC_TRACE_SCOPE("sg.decompress");
  Context::PoolScope pool_scope(ctx_);
  runtime::Timer timer;
  if (packed.shape() != compressed_shape(original)) {
    io::raise_corrupt(io::CorruptKind::kPayloadMismatch,
                      "TriangleCodec: packed shape " +
                          packed.shape().to_string() + " does not match " +
                          compressed_shape(original).to_string() + " for " +
                          original.to_string());
  }
  const std::shared_ptr<const TrianglePlan> plan =
      plan_for(original[2], original[3]);
  Tensor out(original);
  plan->decompress_into(packed, out);
  const std::size_t planes = original[0] * original[1];
  stats_.record_decompress(planes,
                           planes * DctChopCodec::flops_decompress_hw(
                                        original[2], original[3], config_.cf,
                                        config_.block),
                           packed.size_bytes(), out.size_bytes(),
                           timer.nanos());
  return out;
}

}  // namespace aic::core
