#include "core/dct.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace aic::core {

using tensor::Shape;
using tensor::Tensor;

Tensor dct_matrix(std::size_t n) {
  if (n == 0) throw std::invalid_argument("dct_matrix: n must be positive");
  Tensor t(Shape::matrix(n, n));
  const double inv_sqrt_n = 1.0 / std::sqrt(static_cast<double>(n));
  const double scale = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == 0) {
        t.at(i, j) = static_cast<float>(inv_sqrt_n);
      } else {
        const double angle = std::numbers::pi * (2.0 * j + 1.0) * i /
                             (2.0 * static_cast<double>(n));
        t.at(i, j) = static_cast<float>(scale * std::cos(angle));
      }
    }
  }
  return t;
}

Tensor block_diagonal_dct(std::size_t n, std::size_t block) {
  if (block == 0 || n % block != 0) {
    throw std::invalid_argument(
        "block_diagonal_dct: n must be a positive multiple of block");
  }
  const Tensor t = dct_matrix(block);
  Tensor t_l(Shape::matrix(n, n));
  for (std::size_t base = 0; base < n; base += block) {
    for (std::size_t i = 0; i < block; ++i) {
      for (std::size_t j = 0; j < block; ++j) {
        t_l.at(base + i, base + j) = t.at(i, j);
      }
    }
  }
  return t_l;
}

Tensor dct2d_reference(const Tensor& block) {
  if (block.shape().rank() != 2 || block.shape()[0] != block.shape()[1]) {
    throw std::invalid_argument("dct2d_reference: block must be square");
  }
  const std::size_t n = block.shape()[0];
  const double dn = static_cast<double>(n);
  auto c = [](std::size_t w) {
    return w == 0 ? 1.0 / std::numbers::sqrt2 : 1.0;
  };
  auto s = [dn](std::size_t u, std::size_t v) {
    return std::cos((2.0 * u + 1.0) * v * std::numbers::pi / (2.0 * dn));
  };
  Tensor out(Shape::matrix(n, n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t x = 0; x < n; ++x) {
        for (std::size_t y = 0; y < n; ++y) {
          acc += block.at(x, y) * s(x, i) * s(y, j);
        }
      }
      // Eq. 1 normalization: (1/sqrt(2N)) C(i) C(j) ... applied twice for
      // the separable 2-D transform gives 2/N overall together with C().
      out.at(i, j) =
          static_cast<float>(acc * c(i) * c(j) * 2.0 / dn);
    }
  }
  return out;
}

Tensor blockwise_dct_reference(const Tensor& plane, std::size_t block) {
  const std::size_t h = plane.shape()[0];
  const std::size_t w = plane.shape()[1];
  if (h % block != 0 || w % block != 0) {
    throw std::invalid_argument(
        "blockwise_dct_reference: plane not divisible by block");
  }
  Tensor out(Shape::matrix(h, w));
  Tensor tile(Shape::matrix(block, block));
  for (std::size_t bi = 0; bi < h; bi += block) {
    for (std::size_t bj = 0; bj < w; bj += block) {
      for (std::size_t i = 0; i < block; ++i) {
        for (std::size_t j = 0; j < block; ++j) {
          tile.at(i, j) = plane.at(bi + i, bj + j);
        }
      }
      const Tensor coeffs = dct2d_reference(tile);
      for (std::size_t i = 0; i < block; ++i) {
        for (std::size_t j = 0; j < block; ++j) {
          out.at(bi + i, bj + j) = coeffs.at(i, j);
        }
      }
    }
  }
  return out;
}

}  // namespace aic::core
