#include "core/partial_serializer.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/timer.hpp"

namespace aic::core {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Copies an aligned sub-window between two BCHW tensors row by row
/// (rows are contiguous in W, so each is one memcpy).
///
/// For every (batch, channel) plane, the `rows`×`cols` window at
/// (src_h, src_w) of `src` lands at (dst_h, dst_w) of `dst`.
void copy_window(const Tensor& src, std::size_t src_h, std::size_t src_w,
                 Tensor& dst, std::size_t dst_h, std::size_t dst_w,
                 std::size_t rows, std::size_t cols) {
  const std::size_t planes = src.shape()[0] * src.shape()[1];
  const std::size_t src_stride = src.shape()[3];
  const std::size_t dst_stride = dst.shape()[3];
  const std::size_t src_plane = src.shape()[2] * src_stride;
  const std::size_t dst_plane = dst.shape()[2] * dst_stride;
  const float* from = src.raw() + src_h * src_stride + src_w;
  float* to = dst.raw() + dst_h * dst_stride + dst_w;
  for (std::size_t plane = 0; plane < planes; ++plane) {
    const float* from_row = from + plane * src_plane;
    float* to_row = to + plane * dst_plane;
    for (std::size_t r = 0; r < rows; ++r) {
      std::memcpy(to_row, from_row, cols * sizeof(float));
      from_row += src_stride;
      to_row += dst_stride;
    }
  }
}

}  // namespace

PartialSerialCodec::PartialSerialCodec(PartialSerialConfig config)
    : config_(config) {
  const auto& c = config_;
  if (c.subdivision == 0) {
    throw std::invalid_argument("PartialSerialCodec: subdivision must be >= 1");
  }
  if (c.height % c.subdivision != 0 || c.width % c.subdivision != 0) {
    throw std::invalid_argument(
        "PartialSerialCodec: resolution not divisible by subdivision factor");
  }
  chunk_h_ = c.height / c.subdivision;
  chunk_w_ = c.width / c.subdivision;
  chunk_codec_ = std::make_unique<DctChopCodec>(
      DctChopConfig{.height = chunk_h_,
                    .width = chunk_w_,
                    .cf = c.cf,
                    .block = c.block,
                    .transform = c.transform});
}

std::string PartialSerialCodec::name() const {
  std::ostringstream out;
  out << "dct+chop+ps(cf=" << config_.cf << ",s=" << config_.subdivision
      << ")";
  return out.str();
}

double PartialSerialCodec::compression_ratio() const {
  return chunk_codec_->compression_ratio();
}

Shape PartialSerialCodec::compressed_shape(const Shape& input) const {
  if (input.rank() != 4 || input[2] != config_.height ||
      input[3] != config_.width) {
    throw std::invalid_argument("PartialSerialCodec: bad input shape " +
                                input.to_string());
  }
  const std::size_t ch = config_.cf * config_.height / config_.block;
  const std::size_t cw = config_.cf * config_.width / config_.block;
  return Shape::bchw(input[0], input[1], ch, cw);
}

Tensor PartialSerialCodec::compress(const Tensor& input) const {
  AIC_TRACE_SCOPE("ps.compress");
  runtime::Timer timer;
  Tensor out(compressed_shape(input.shape()));
  const std::size_t batch = input.shape()[0];
  const std::size_t channels = input.shape()[1];
  const std::size_t s = config_.subdivision;
  const std::size_t chunk_ch = config_.cf * chunk_h_ / config_.block;
  const std::size_t chunk_cw = config_.cf * chunk_w_ / config_.block;

  // Chunks are deliberately iterated serially: only one chunk's working
  // set is alive at a time (the whole point of the optimization).
  Tensor chunk(Shape::bchw(batch, channels, chunk_h_, chunk_w_));
  for (std::size_t si = 0; si < s; ++si) {
    for (std::size_t sj = 0; sj < s; ++sj) {
      AIC_TRACE_SCOPE("ps.chunk");
      copy_window(input, si * chunk_h_, sj * chunk_w_, chunk, 0, 0, chunk_h_,
                  chunk_w_);
      const Tensor packed = chunk_codec_->compress(chunk);
      copy_window(packed, 0, 0, out, si * chunk_ch, sj * chunk_cw, chunk_ch,
                  chunk_cw);
    }
  }
  const std::size_t planes = batch * channels;
  const std::uint64_t nanos = timer.nanos();
  stats_.record_compress(
      planes,
      planes * s * s *
          DctChopCodec::flops_compress_hw(chunk_h_, chunk_w_, config_.cf,
                                          config_.block),
      input.size_bytes(), out.size_bytes(), nanos);
  static obs::Histogram& latency =
      obs::Registry::global().histogram("ps.compress.ns");
  latency.record(nanos);
  return out;
}

Tensor PartialSerialCodec::decompress(const Tensor& packed,
                                      const Shape& original) const {
  AIC_TRACE_SCOPE("ps.decompress");
  runtime::Timer timer;
  if (packed.shape() != compressed_shape(original)) {
    throw std::invalid_argument("PartialSerialCodec: packed shape mismatch");
  }
  Tensor out(original);
  const std::size_t batch = original[0];
  const std::size_t channels = original[1];
  const std::size_t s = config_.subdivision;
  const std::size_t chunk_ch = config_.cf * chunk_h_ / config_.block;
  const std::size_t chunk_cw = config_.cf * chunk_w_ / config_.block;
  const Shape chunk_shape = Shape::bchw(batch, channels, chunk_h_, chunk_w_);

  Tensor chunk_packed(Shape::bchw(batch, channels, chunk_ch, chunk_cw));
  for (std::size_t si = 0; si < s; ++si) {
    for (std::size_t sj = 0; sj < s; ++sj) {
      AIC_TRACE_SCOPE("ps.chunk");
      copy_window(packed, si * chunk_ch, sj * chunk_cw, chunk_packed, 0, 0,
                  chunk_ch, chunk_cw);
      const Tensor chunk = chunk_codec_->decompress(chunk_packed, chunk_shape);
      copy_window(chunk, 0, 0, out, si * chunk_h_, sj * chunk_w_, chunk_h_,
                  chunk_w_);
    }
  }
  const std::size_t planes = batch * channels;
  const std::uint64_t nanos = timer.nanos();
  stats_.record_decompress(
      planes,
      planes * s * s *
          DctChopCodec::flops_decompress_hw(chunk_h_, chunk_w_, config_.cf,
                                            config_.block),
      packed.size_bytes(), out.size_bytes(), nanos);
  static obs::Histogram& latency =
      obs::Registry::global().histogram("ps.decompress.ns");
  latency.record(nanos);
  return out;
}

std::size_t PartialSerialCodec::operator_bytes() const {
  return chunk_codec_->lhs().size_bytes() + chunk_codec_->rhs().size_bytes();
}

std::size_t PartialSerialCodec::unserialized_operator_bytes(std::size_t n,
                                                            std::size_t cf,
                                                            std::size_t block) {
  const std::size_t rows = cf * n / block;
  return 2 * rows * n * sizeof(float);
}

}  // namespace aic::core
