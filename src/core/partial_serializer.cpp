#include "core/partial_serializer.hpp"

#include <cstring>
#include <future>
#include <sstream>
#include <stdexcept>

#include "core/plan_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "io/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/timer.hpp"

namespace aic::core {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Copies an aligned sub-window between two BCHW tensors row by row
/// (rows are contiguous in W, so each is one memcpy).
///
/// For every (batch, channel) plane, the `rows`×`cols` window at
/// (src_h, src_w) of `src` lands at (dst_h, dst_w) of `dst`.
void copy_window(const Tensor& src, std::size_t src_h, std::size_t src_w,
                 Tensor& dst, std::size_t dst_h, std::size_t dst_w,
                 std::size_t rows, std::size_t cols) {
  const std::size_t planes = src.shape()[0] * src.shape()[1];
  const std::size_t src_stride = src.shape()[3];
  const std::size_t dst_stride = dst.shape()[3];
  const std::size_t src_plane = src.shape()[2] * src_stride;
  const std::size_t dst_plane = dst.shape()[2] * dst_stride;
  const float* from = src.raw() + src_h * src_stride + src_w;
  float* to = dst.raw() + dst_h * dst_stride + dst_w;
  for (std::size_t plane = 0; plane < planes; ++plane) {
    const float* from_row = from + plane * src_plane;
    float* to_row = to + plane * dst_plane;
    for (std::size_t r = 0; r < rows; ++r) {
      std::memcpy(to_row, from_row, cols * sizeof(float));
      from_row += src_stride;
      to_row += dst_stride;
    }
  }
}

}  // namespace

PartialSerialCodec::PartialSerialCodec(PartialSerialConfig config, Context ctx)
    : Codec(std::move(ctx)),
      config_(config),
      compress_latency_(ctx_.histogram("ps.compress.ns")),
      decompress_latency_(ctx_.histogram("ps.decompress.ns")) {
  const auto& c = config_;
  if (c.subdivision == 0) {
    throw std::invalid_argument("PartialSerialCodec: subdivision must be >= 1");
  }
  if (c.block == 0 || c.cf == 0 || c.cf > c.block) {
    throw std::invalid_argument("PartialSerialCodec: cf must be in [1, block]");
  }
  if (c.height != 0 || c.width != 0) {
    pinned_ = resolve_partial_serial_plan(ctx_, c.height, c.width, c.cf,
                                          c.block, c.transform, c.subdivision);
    chunk_codec_ = std::make_unique<DctChopCodec>(
        DctChopConfig{.height = pinned_->chunk_h(),
                      .width = pinned_->chunk_w(),
                      .cf = c.cf,
                      .block = c.block,
                      .transform = c.transform},
        ctx_);
  } else {
    // Shape-agnostic: one chunk codec serves every incoming resolution,
    // resolving the per-chunk plan from the cache.
    chunk_codec_ = std::make_unique<DctChopCodec>(
        DctChopConfig{.cf = c.cf, .block = c.block, .transform = c.transform},
        ctx_);
  }
}

std::shared_ptr<const PartialSerialPlan> PartialSerialCodec::plan_for(
    std::size_t height, std::size_t width) const {
  if (pinned_) {
    if (height != config_.height || width != config_.width) {
      throw std::invalid_argument("PartialSerialCodec: codec compiled for " +
                                  std::to_string(config_.height) + "x" +
                                  std::to_string(config_.width) + ", got " +
                                  std::to_string(height) + "x" +
                                  std::to_string(width));
    }
    return pinned_;
  }
  return resolve_partial_serial_plan(ctx_, height, width, config_.cf,
                                     config_.block, config_.transform,
                                     config_.subdivision);
}

std::string PartialSerialCodec::name() const {
  std::ostringstream out;
  out << "dct+chop+ps(cf=" << config_.cf << ",s=" << config_.subdivision
      << ")";
  return out.str();
}

std::string PartialSerialCodec::spec() const {
  std::ostringstream out;
  out << "partial:cf=" << config_.cf << ",block=" << config_.block
      << ",s=" << config_.subdivision;
  if (config_.transform != TransformKind::kDct2) {
    out << ",transform=" << transform_name(config_.transform);
  }
  if (pinned_) {
    out << ",h=" << config_.height << ",w=" << config_.width;
  }
  return out.str();
}

double PartialSerialCodec::compression_ratio() const {
  return chop_ratio(config_.cf, config_.block);
}

Shape PartialSerialCodec::compressed_shape(const Shape& input) const {
  if (input.rank() != 4 ||
      (pinned_ &&
       (input[2] != config_.height || input[3] != config_.width))) {
    throw std::invalid_argument("PartialSerialCodec: bad input shape " +
                                input.to_string());
  }
  // Validates chunk geometry (divisibility by s, chunk multiple of block).
  (void)partial_serial_plan_key(input[2], input[3], config_.cf, config_.block,
                                config_.transform, config_.subdivision);
  const std::size_t ch = config_.cf * input[2] / config_.block;
  const std::size_t cw = config_.cf * input[3] / config_.block;
  return Shape::bchw(input[0], input[1], ch, cw);
}

Tensor PartialSerialCodec::compress(const Tensor& input) const {
  AIC_TRACE_SCOPE("ps.compress");
  Context::PoolScope pool_scope(ctx_);
  runtime::Timer timer;
  Tensor out(compressed_shape(input.shape()));
  const std::size_t batch = input.shape()[0];
  const std::size_t channels = input.shape()[1];
  const std::size_t s = config_.subdivision;
  const std::size_t chunk_h = input.shape()[2] / s;
  const std::size_t chunk_w = input.shape()[3] / s;
  const std::size_t chunk_ch = config_.cf * chunk_h / config_.block;
  const std::size_t chunk_cw = config_.cf * chunk_w / config_.block;

  // Chunks are still transformed serially — only one chunk's transform
  // working set is alive at a time, the point of the optimization — but
  // the NEXT chunk's input window is gathered on the pool while the
  // current chunk runs its GEMM sandwich. Double buffering costs one
  // extra input staging tensor (still O(plane / s^2)) and hides the
  // strided copy_window latency behind the transform.
  Tensor staging[2] = {
      Tensor(Shape::bchw(batch, channels, chunk_h, chunk_w)),
      Tensor(Shape::bchw(batch, channels, chunk_h, chunk_w))};
  const std::size_t total = s * s;
  const auto stage = [&](std::size_t index, Tensor& dst) {
    copy_window(input, (index / s) * chunk_h, (index % s) * chunk_w, dst, 0,
                0, chunk_h, chunk_w);
  };
  runtime::ThreadPool& pool = ctx_.pool();
  std::future<void> pending;
  stage(0, staging[0]);
  try {
    for (std::size_t index = 0; index < total; ++index) {
      AIC_TRACE_SCOPE("ps.chunk");
      if (pending.valid()) pending.get();  // chunk `index` fully staged
      const Tensor& chunk = staging[index & 1];
      if (index + 1 < total) {
        Tensor* next = &staging[(index + 1) & 1];
        pending =
            pool.submit([&stage, next, index] { stage(index + 1, *next); });
      }
      const Tensor packed = chunk_codec_->compress(chunk);
      copy_window(packed, 0, 0, out, (index / s) * chunk_ch,
                  (index % s) * chunk_cw, chunk_ch, chunk_cw);
    }
  } catch (...) {
    // A queued prefetch must not outlive the tensors it writes into.
    if (pending.valid()) pending.wait();
    throw;
  }
  const std::size_t planes = batch * channels;
  const std::uint64_t nanos = timer.nanos();
  stats_.record_compress(
      planes,
      planes * s * s *
          DctChopCodec::flops_compress_hw(chunk_h, chunk_w, config_.cf,
                                          config_.block),
      input.size_bytes(), out.size_bytes(), nanos);
  compress_latency_.record(nanos);
  return out;
}

Tensor PartialSerialCodec::decompress(const Tensor& packed,
                                      const Shape& original) const {
  AIC_TRACE_SCOPE("ps.decompress");
  Context::PoolScope pool_scope(ctx_);
  runtime::Timer timer;
  if (packed.shape() != compressed_shape(original)) {
    io::raise_corrupt(io::CorruptKind::kPayloadMismatch,
                      "PartialSerialCodec: packed shape " +
                          packed.shape().to_string() + " does not match " +
                          compressed_shape(original).to_string() + " for " +
                          original.to_string());
  }
  Tensor out(original);
  const std::size_t batch = original[0];
  const std::size_t channels = original[1];
  const std::size_t s = config_.subdivision;
  const std::size_t chunk_h = original[2] / s;
  const std::size_t chunk_w = original[3] / s;
  const std::size_t chunk_ch = config_.cf * chunk_h / config_.block;
  const std::size_t chunk_cw = config_.cf * chunk_w / config_.block;
  const Shape chunk_shape = Shape::bchw(batch, channels, chunk_h, chunk_w);

  Tensor chunk_packed(Shape::bchw(batch, channels, chunk_ch, chunk_cw));
  for (std::size_t si = 0; si < s; ++si) {
    for (std::size_t sj = 0; sj < s; ++sj) {
      AIC_TRACE_SCOPE("ps.chunk");
      copy_window(packed, si * chunk_ch, sj * chunk_cw, chunk_packed, 0, 0,
                  chunk_ch, chunk_cw);
      const Tensor chunk = chunk_codec_->decompress(chunk_packed, chunk_shape);
      copy_window(chunk, 0, 0, out, si * chunk_h, sj * chunk_w, chunk_h,
                  chunk_w);
    }
  }
  const std::size_t planes = batch * channels;
  const std::uint64_t nanos = timer.nanos();
  stats_.record_decompress(
      planes,
      planes * s * s *
          DctChopCodec::flops_decompress_hw(chunk_h, chunk_w, config_.cf,
                                            config_.block),
      packed.size_bytes(), out.size_bytes(), nanos);
  decompress_latency_.record(nanos);
  return out;
}

std::size_t PartialSerialCodec::operator_bytes() const {
  if (!pinned_) {
    throw std::logic_error(
        "PartialSerialCodec::operator_bytes: requires a pinned codec");
  }
  return chunk_codec_->lhs().size_bytes() + chunk_codec_->rhs().size_bytes();
}

std::size_t PartialSerialCodec::workspace_bytes(std::size_t batch,
                                                std::size_t channels) const {
  if (!pinned_) {
    throw std::logic_error(
        "PartialSerialCodec::workspace_bytes: requires a pinned codec");
  }
  return pinned_->workspace_bytes(batch, channels);
}

std::size_t PartialSerialCodec::unserialized_operator_bytes(std::size_t n,
                                                            std::size_t cf,
                                                            std::size_t block) {
  const std::size_t rows = cf * n / block;
  return 2 * rows * n * sizeof(float);
}

}  // namespace aic::core
