#include "core/partial_serializer.hpp"

#include <sstream>
#include <stdexcept>

namespace aic::core {

using tensor::Shape;
using tensor::Tensor;

PartialSerialCodec::PartialSerialCodec(PartialSerialConfig config)
    : config_(config) {
  const auto& c = config_;
  if (c.subdivision == 0) {
    throw std::invalid_argument("PartialSerialCodec: subdivision must be >= 1");
  }
  if (c.height % c.subdivision != 0 || c.width % c.subdivision != 0) {
    throw std::invalid_argument(
        "PartialSerialCodec: resolution not divisible by subdivision factor");
  }
  chunk_h_ = c.height / c.subdivision;
  chunk_w_ = c.width / c.subdivision;
  chunk_codec_ = std::make_unique<DctChopCodec>(
      DctChopConfig{.height = chunk_h_,
                    .width = chunk_w_,
                    .cf = c.cf,
                    .block = c.block,
                    .transform = c.transform});
}

std::string PartialSerialCodec::name() const {
  std::ostringstream out;
  out << "dct+chop+ps(cf=" << config_.cf << ",s=" << config_.subdivision
      << ")";
  return out.str();
}

double PartialSerialCodec::compression_ratio() const {
  return chunk_codec_->compression_ratio();
}

Shape PartialSerialCodec::compressed_shape(const Shape& input) const {
  if (input.rank() != 4 || input[2] != config_.height ||
      input[3] != config_.width) {
    throw std::invalid_argument("PartialSerialCodec: bad input shape " +
                                input.to_string());
  }
  const std::size_t ch = config_.cf * config_.height / config_.block;
  const std::size_t cw = config_.cf * config_.width / config_.block;
  return Shape::bchw(input[0], input[1], ch, cw);
}

Tensor PartialSerialCodec::compress(const Tensor& input) const {
  Tensor out(compressed_shape(input.shape()));
  const std::size_t batch = input.shape()[0];
  const std::size_t channels = input.shape()[1];
  const std::size_t s = config_.subdivision;
  const std::size_t chunk_ch = config_.cf * chunk_h_ / config_.block;
  const std::size_t chunk_cw = config_.cf * chunk_w_ / config_.block;

  // Chunks are deliberately iterated serially: only one chunk's working
  // set is alive at a time (the whole point of the optimization).
  for (std::size_t si = 0; si < s; ++si) {
    for (std::size_t sj = 0; sj < s; ++sj) {
      Tensor chunk(Shape::bchw(batch, channels, chunk_h_, chunk_w_));
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t c = 0; c < channels; ++c) {
          for (std::size_t h = 0; h < chunk_h_; ++h) {
            for (std::size_t w = 0; w < chunk_w_; ++w) {
              chunk.at(b, c, h, w) =
                  input.at(b, c, si * chunk_h_ + h, sj * chunk_w_ + w);
            }
          }
        }
      }
      const Tensor packed = chunk_codec_->compress(chunk);
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t c = 0; c < channels; ++c) {
          for (std::size_t h = 0; h < chunk_ch; ++h) {
            for (std::size_t w = 0; w < chunk_cw; ++w) {
              out.at(b, c, si * chunk_ch + h, sj * chunk_cw + w) =
                  packed.at(b, c, h, w);
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor PartialSerialCodec::decompress(const Tensor& packed,
                                      const Shape& original) const {
  if (packed.shape() != compressed_shape(original)) {
    throw std::invalid_argument("PartialSerialCodec: packed shape mismatch");
  }
  Tensor out(original);
  const std::size_t batch = original[0];
  const std::size_t channels = original[1];
  const std::size_t s = config_.subdivision;
  const std::size_t chunk_ch = config_.cf * chunk_h_ / config_.block;
  const std::size_t chunk_cw = config_.cf * chunk_w_ / config_.block;

  for (std::size_t si = 0; si < s; ++si) {
    for (std::size_t sj = 0; sj < s; ++sj) {
      Tensor chunk_packed(Shape::bchw(batch, channels, chunk_ch, chunk_cw));
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t c = 0; c < channels; ++c) {
          for (std::size_t h = 0; h < chunk_ch; ++h) {
            for (std::size_t w = 0; w < chunk_cw; ++w) {
              chunk_packed.at(b, c, h, w) =
                  packed.at(b, c, si * chunk_ch + h, sj * chunk_cw + w);
            }
          }
        }
      }
      const Tensor chunk = chunk_codec_->decompress(
          chunk_packed, Shape::bchw(batch, channels, chunk_h_, chunk_w_));
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t c = 0; c < channels; ++c) {
          for (std::size_t h = 0; h < chunk_h_; ++h) {
            for (std::size_t w = 0; w < chunk_w_; ++w) {
              out.at(b, c, si * chunk_h_ + h, sj * chunk_w_ + w) =
                  chunk.at(b, c, h, w);
            }
          }
        }
      }
    }
  }
  return out;
}

std::size_t PartialSerialCodec::operator_bytes() const {
  return chunk_codec_->lhs().size_bytes() + chunk_codec_->rhs().size_bytes();
}

std::size_t PartialSerialCodec::unserialized_operator_bytes(std::size_t n,
                                                            std::size_t cf,
                                                            std::size_t block) {
  const std::size_t rows = cf * n / block;
  return 2 * rows * n * sizeof(float);
}

}  // namespace aic::core
