#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/dct_chop.hpp"

namespace aic::core {

/// Error-target rate selection (§6 "library of tailored compressors").
///
/// The accelerators fix the compression ratio at compile time, so the
/// ratio cannot adapt per sample — but it *can* be chosen per dataset
/// before compilation. Given a calibration tensor and a distortion
/// budget, the controller picks the most aggressive chop factor whose
/// round-trip error stays within budget; the resulting codec is then
/// compiled once, as usual.
struct RateChoice {
  std::size_t cf = 0;
  double compression_ratio = 0.0;
  double measured_mse = 0.0;
  double measured_psnr_db = 0.0;
};

/// Smallest CF (highest CR) whose round-trip MSE on `calibration` is at
/// most `max_mse`. Returns nullopt when even CF = block misses the
/// budget (possible only for non-finite inputs; CF = block is lossless
/// up to fp32 rounding).
std::optional<RateChoice> choose_chop_factor(
    const tensor::Tensor& calibration, double max_mse,
    std::size_t block = kDefaultBlock,
    TransformKind transform = TransformKind::kDct2);

/// As above but with a PSNR floor in dB (peak = 1.0 data range).
std::optional<RateChoice> choose_chop_factor_psnr(
    const tensor::Tensor& calibration, double min_psnr_db,
    std::size_t block = kDefaultBlock,
    TransformKind transform = TransformKind::kDct2);

/// Builds the codec for a choice made by the functions above, through
/// core::CodecFactory (pinned to height×width).
CodecPtr make_codec_for_choice(
    const RateChoice& choice, std::size_t height, std::size_t width,
    std::size_t block = kDefaultBlock,
    TransformKind transform = TransformKind::kDct2);

/// Full rate/distortion curve over CF ∈ [1, block] on the calibration
/// tensor — the data a tailored-compressor library would precompute.
std::vector<RateChoice> rate_distortion_curve(
    const tensor::Tensor& calibration, std::size_t block = kDefaultBlock,
    TransformKind transform = TransformKind::kDct2);

}  // namespace aic::core
