#include "core/plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/chop.hpp"
#include "core/plan_cache.hpp"
#include "core/zigzag.hpp"

namespace aic::core {

using tensor::BandedSpec;
using tensor::Shape;
using tensor::Tensor;

const char* codec_kind_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kDctChop: return "dctchop";
    case CodecKind::kPartialSerial: return "partial";
    case CodecKind::kTriangle: return "triangle";
    case CodecKind::kZfp: return "zfp";
    case CodecKind::kSz: return "sz";
    case CodecKind::kJpeg: return "jpeg";
    case CodecKind::kColorQuant: return "colorquant";
  }
  return "?";
}

std::string PlanKey::to_string() const {
  std::ostringstream out;
  out << codec_kind_name(kind) << ":" << transform_name(transform)
      << ",block=" << block << ",cf=" << cf << ",s=" << subdivision << ","
      << height << "x" << width;
  if (param_milli != 0) out << ",param=" << param_milli << "m";
  return out.str();
}

std::size_t PlanKeyHash::operator()(const PlanKey& key) const noexcept {
  // splitmix64-style mixing over the packed fields.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    return h ^ (h >> 33);
  };
  std::uint64_t h = static_cast<std::uint64_t>(key.kind);
  h = mix(h, static_cast<std::uint64_t>(key.transform));
  h = mix(h, (static_cast<std::uint64_t>(key.block) << 32) | key.cf);
  h = mix(h, key.subdivision);
  h = mix(h, key.height);
  h = mix(h, key.width);
  h = mix(h, key.param_milli);
  return static_cast<std::size_t>(h);
}

namespace {

void validate_chop_geometry(const char* who, std::size_t height,
                            std::size_t width, std::size_t cf,
                            std::size_t block) {
  if (height == 0 || width == 0 || block == 0 || height % block != 0 ||
      width % block != 0) {
    throw std::invalid_argument(
        std::string(who) +
        ": height/width must be positive multiples of block");
  }
  if (cf == 0 || cf > block) {
    throw std::invalid_argument(std::string(who) +
                                ": cf must be in [1, block]");
  }
}

}  // namespace

PlanKey dct_chop_plan_key(std::size_t height, std::size_t width,
                          std::size_t cf, std::size_t block,
                          TransformKind transform) {
  validate_chop_geometry("DctChopCodec", height, width, cf, block);
  PlanKey key;
  key.kind = CodecKind::kDctChop;
  key.transform = transform;
  key.block = static_cast<std::uint32_t>(block);
  key.cf = static_cast<std::uint32_t>(cf);
  key.height = height;
  key.width = width;
  return key;
}

PlanKey partial_serial_plan_key(std::size_t height, std::size_t width,
                                std::size_t cf, std::size_t block,
                                TransformKind transform,
                                std::size_t subdivision) {
  if (subdivision == 0) {
    throw std::invalid_argument("PartialSerialCodec: subdivision must be >= 1");
  }
  if (height == 0 || width == 0 || height % subdivision != 0 ||
      width % subdivision != 0) {
    throw std::invalid_argument(
        "PartialSerialCodec: resolution not divisible by subdivision factor");
  }
  // The chunk resolution must itself be a valid chop geometry.
  validate_chop_geometry("PartialSerialCodec", height / subdivision,
                         width / subdivision, cf, block);
  PlanKey key;
  key.kind = CodecKind::kPartialSerial;
  key.transform = transform;
  key.block = static_cast<std::uint32_t>(block);
  key.cf = static_cast<std::uint32_t>(cf);
  key.subdivision = static_cast<std::uint32_t>(subdivision);
  key.height = height;
  key.width = width;
  return key;
}

PlanKey triangle_plan_key(std::size_t height, std::size_t width,
                          std::size_t cf, std::size_t block,
                          TransformKind transform) {
  PlanKey key = dct_chop_plan_key(height, width, cf, block, transform);
  key.kind = CodecKind::kTriangle;
  return key;
}

// ---------------------------------------------------------------------------
// DctChopPlan

DctChopPlan::DctChopPlan(const PlanKey& key) : CodecPlan(key) {
  validate_chop_geometry("DctChopPlan", key.height, key.width, key.cf,
                         key.block);
  // Satellite: Eq. 4/6 give RHS = LHSᵀ, so one make_lhs() matmul per
  // unique dimension is enough; the transpose is a copy, not a rebuild.
  // Square plans (the common case) share one pair for both axes.
  auto build_operand = [&key](std::size_t n) {
    auto lhs = std::make_shared<Tensor>(
        make_lhs(n, key.cf, key.block, key.transform));
    auto rhs = std::make_shared<Tensor>(lhs->transposed());
    return ChopOperand{std::move(lhs), std::move(rhs)};
  };
  op_h_ = build_operand(key.height);
  op_w_ = (key.width == key.height) ? op_h_ : build_operand(key.width);

  // Chop operators are block-banded by construction (Fig. 4): LHS keeps
  // CF rows per block-column block, RHS = LHSᵀ. Verify once at "compile
  // time" and hand the structure to the sandwich kernel; an operator
  // that ever stops matching simply runs on the dense path.
  const BandedSpec lhs_spec{key.cf, key.block};  // (CF·n/b)×n operators
  const BandedSpec rhs_spec{key.block, key.cf};  // n×(CF·n/b) operators
  const bool h_banded = tensor::is_block_banded(*op_h_.lhs, lhs_spec) &&
                        tensor::is_block_banded(*op_h_.rhs, rhs_spec);
  const bool w_banded =
      shares_square_operands()
          ? h_banded
          : tensor::is_block_banded(*op_w_.lhs, lhs_spec) &&
                tensor::is_block_banded(*op_w_.rhs, rhs_spec);
  if (h_banded && w_banded) {
    compress_bands_ = {.lhs_bands = lhs_spec, .rhs_bands = rhs_spec};
    decompress_bands_ = {.lhs_bands = rhs_spec, .rhs_bands = lhs_spec};
  }
}

Shape DctChopPlan::packed_shape(const Shape& input) const {
  const PlanKey& k = key();
  if (input.rank() != 4 || input[2] != k.height || input[3] != k.width) {
    throw std::invalid_argument("DctChopPlan: plan compiled for " +
                                std::to_string(k.height) + "x" +
                                std::to_string(k.width) + ", got " +
                                input.to_string());
  }
  const std::size_t ch = k.cf * k.height / k.block;
  const std::size_t cw = k.cf * k.width / k.block;
  return Shape::bchw(input[0], input[1], ch, cw);
}

void DctChopPlan::compress_into(const Tensor& input, Tensor& out) const {
  tensor::sandwich_planes_into(*op_h_.lhs, input, *op_w_.rhs, out,
                               compress_bands_);
}

void DctChopPlan::decompress_into(const Tensor& packed, Tensor& out) const {
  // Eq. 6: A' = RHS · Y · LHS — the same operators with roles swapped.
  tensor::sandwich_planes_into(*op_h_.rhs, packed, *op_w_.lhs, out,
                               decompress_bands_);
}

std::size_t DctChopPlan::resident_bytes() const {
  std::size_t bytes = op_h_.lhs->size_bytes() + op_h_.rhs->size_bytes();
  if (!shares_square_operands()) {
    bytes += op_w_.lhs->size_bytes() + op_w_.rhs->size_bytes();
  }
  return bytes;
}

std::size_t DctChopPlan::workspace_bytes(std::size_t /*batch*/,
                                         std::size_t /*channels*/) const {
  // The sandwich kernel's per-worker mid-product strip: lb_c×out_w floats
  // on the banded path, full h×out_w on the dense fallback. Scratch is
  // per worker thread and does not scale with batch or channels.
  const PlanKey& k = key();
  const std::size_t ch = k.cf * k.height / k.block;
  const std::size_t cw = k.cf * k.width / k.block;
  const bool banded = compress_bands_.lhs_bands.valid();
  const std::size_t compress_floats =
      (banded ? k.block : k.height) * cw;
  const std::size_t decompress_floats = (banded ? k.cf : ch) * k.width;
  return std::max(compress_floats, decompress_floats) * sizeof(float);
}

// ---------------------------------------------------------------------------
// PartialSerialPlan

PartialSerialPlan::PartialSerialPlan(
    const PlanKey& key, std::shared_ptr<const DctChopPlan> chunk_plan)
    : CodecPlan(key),
      chunk_plan_(std::move(chunk_plan)),
      chunk_h_(key.height / key.subdivision),
      chunk_w_(key.width / key.subdivision) {}

Shape PartialSerialPlan::packed_shape(const Shape& input) const {
  const PlanKey& k = key();
  if (input.rank() != 4 || input[2] != k.height || input[3] != k.width) {
    throw std::invalid_argument("PartialSerialPlan: bad input shape " +
                                input.to_string());
  }
  const std::size_t ch = k.cf * k.height / k.block;
  const std::size_t cw = k.cf * k.width / k.block;
  return Shape::bchw(input[0], input[1], ch, cw);
}

std::size_t PartialSerialPlan::resident_bytes() const {
  // The chunk plan is a cache entry of its own (that sharing is the whole
  // point of §3.5.1) — counting it here would double-bill the budget.
  return 0;
}

std::size_t PartialSerialPlan::workspace_bytes(std::size_t batch,
                                               std::size_t channels) const {
  // Satellite fix: the working set of one in-flight chunk is NOT just the
  // chunk operands — it is chunk input staging + chunk packed staging
  // (both batch×channels deep) + the chunk executor's own scratch. Accel
  // memory-capacity checks add this to activation bytes, so report all
  // of it.
  const PlanKey& k = key();
  const std::size_t planes = batch * channels;
  const std::size_t chunk_ch = k.cf * chunk_h_ / k.block;
  const std::size_t chunk_cw = k.cf * chunk_w_ / k.block;
  const std::size_t staging_floats =
      planes * (chunk_h_ * chunk_w_ + chunk_ch * chunk_cw);
  return staging_floats * sizeof(float) +
         chunk_plan_->workspace_bytes(batch, channels);
}

// ---------------------------------------------------------------------------
// TrianglePlan

TrianglePlan::TrianglePlan(const PlanKey& key,
                           std::shared_ptr<const DctChopPlan> inner_plan)
    : CodecPlan(key), inner_plan_(std::move(inner_plan)) {
  per_block_ = key.cf * (key.cf + 1) / 2;
  const std::size_t blocks_h = key.height / key.block;
  const std::size_t blocks_w = key.width / key.block;
  blocks_ = blocks_h * blocks_w;
  chopped_h_ = key.cf * blocks_h;
  chopped_w_ = key.cf * blocks_w;

  // Compile-time index computation (§3.5.2): per-block triangle offsets,
  // replicated at each block's base position in the chopped plane.
  const std::vector<std::size_t> block_offsets =
      triangle_indices(key.cf, chopped_w_);
  indices_.reserve(blocks_ * per_block_);
  for (std::size_t bi = 0; bi < blocks_h; ++bi) {
    for (std::size_t bj = 0; bj < blocks_w; ++bj) {
      const std::size_t base = bi * key.cf * chopped_w_ + bj * key.cf;
      for (std::size_t offset : block_offsets) {
        indices_.push_back(base + offset);
      }
    }
  }
}

Shape TrianglePlan::packed_shape(const Shape& input) const {
  (void)inner_plan_->packed_shape(input);  // validates the resolution
  return Shape::bchw(input[0], input[1], blocks_, per_block_);
}

void TrianglePlan::compress_into(const Tensor& input, Tensor& out) const {
  Tensor chopped(inner_plan_->packed_shape(input.shape()));
  inner_plan_->compress_into(input, chopped);
  const std::size_t planes = input.shape()[0] * input.shape()[1];
  const std::size_t plane = chopped_h_ * chopped_w_;
  const std::size_t packed_plane = blocks_ * per_block_;
  const float* src = chopped.raw();
  float* dst = out.raw();
  for (std::size_t p = 0; p < planes; ++p) {
    const float* plane_src = src + p * plane;
    float* plane_dst = dst + p * packed_plane;
    // torch.gather: packed[k] = chopped[index[k]]
    for (std::size_t k = 0; k < indices_.size(); ++k) {
      plane_dst[k] = plane_src[indices_[k]];
    }
  }
}

void TrianglePlan::decompress_into(const Tensor& packed, Tensor& out) const {
  const std::size_t planes = out.shape()[0] * out.shape()[1];
  Tensor chopped(
      Shape::bchw(out.shape()[0], out.shape()[1], chopped_h_, chopped_w_));
  const std::size_t plane = chopped_h_ * chopped_w_;
  const std::size_t packed_plane = blocks_ * per_block_;
  const float* src = packed.raw();
  float* dst = chopped.raw();
  for (std::size_t p = 0; p < planes; ++p) {
    const float* plane_src = src + p * packed_plane;
    float* plane_dst = dst + p * plane;
    // torch.scatter: chopped[index[k]] = packed[k]; untouched positions
    // stay zero (they were chopped away).
    for (std::size_t k = 0; k < indices_.size(); ++k) {
      plane_dst[indices_[k]] = plane_src[k];
    }
  }
  inner_plan_->decompress_into(chopped, out);
}

std::size_t TrianglePlan::resident_bytes() const {
  // The inner chop plan is its own cache entry; bill only the gather table.
  return indices_.size() * sizeof(std::size_t);
}

std::size_t TrianglePlan::workspace_bytes(std::size_t batch,
                                          std::size_t channels) const {
  // One full chopped-layout staging tensor per call plus the inner
  // executor's scratch.
  return batch * channels * chopped_h_ * chopped_w_ * sizeof(float) +
         inner_plan_->workspace_bytes(batch, channels);
}

// ---------------------------------------------------------------------------

std::shared_ptr<const CodecPlan> build_core_plan(const PlanKey& key,
                                                 PlanCache& cache) {
  switch (key.kind) {
    case CodecKind::kDctChop:
      return std::make_shared<DctChopPlan>(key);
    case CodecKind::kPartialSerial: {
      auto chunk = std::static_pointer_cast<const DctChopPlan>(cache.resolve(
          dct_chop_plan_key(key.height / key.subdivision,
                            key.width / key.subdivision, key.cf, key.block,
                            key.transform)));
      return std::make_shared<PartialSerialPlan>(key, std::move(chunk));
    }
    case CodecKind::kTriangle: {
      auto inner = std::static_pointer_cast<const DctChopPlan>(cache.resolve(
          dct_chop_plan_key(key.height, key.width, key.cf, key.block,
                            key.transform)));
      return std::make_shared<TrianglePlan>(key, std::move(inner));
    }
    default:
      throw std::invalid_argument(
          "build_core_plan: no default builder for key " + key.to_string() +
          " (baseline kinds register their own)");
  }
}

}  // namespace aic::core
