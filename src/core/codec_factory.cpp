#include "core/codec_factory.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/dct_chop.hpp"
#include "core/partial_serializer.hpp"
#include "core/triangle.hpp"

namespace aic::core {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// SpecParams

SpecParams::SpecParams(std::string kind,
                       std::map<std::string, std::string> values,
                       std::string original)
    : kind_(std::move(kind)),
      values_(std::move(values)),
      original_(std::move(original)) {}

const std::string* SpecParams::find(const std::string& key) const {
  recognized_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? nullptr : &it->second;
}

bool SpecParams::has(const std::string& key) const {
  return find(key) != nullptr;
}

std::size_t SpecParams::get_size(const std::string& key,
                                 std::size_t fallback) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return fallback;
  try {
    std::size_t pos = 0;
    const unsigned long long value = std::stoull(*raw, &pos);
    if (pos != raw->size() || raw->front() == '-') throw std::exception();
    return static_cast<std::size_t>(value);
  } catch (...) {
    fail("parameter \"" + key + "\" expects a non-negative integer, got \"" +
         *raw + "\"");
  }
}

double SpecParams::get_double(const std::string& key, double fallback) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return fallback;
  try {
    std::size_t pos = 0;
    const double value = std::stod(*raw, &pos);
    if (pos != raw->size()) throw std::exception();
    return value;
  } catch (...) {
    fail("parameter \"" + key + "\" expects a number, got \"" + *raw + "\"");
  }
}

std::string SpecParams::get_string(const std::string& key,
                                   const std::string& fallback) const {
  const std::string* raw = find(key);
  return raw == nullptr ? fallback : *raw;
}

bool SpecParams::get_bool(const std::string& key, bool fallback) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return fallback;
  if (*raw == "1" || *raw == "true" || *raw == "on" || *raw == "yes") {
    return true;
  }
  if (*raw == "0" || *raw == "false" || *raw == "off" || *raw == "no") {
    return false;
  }
  fail("parameter \"" + key + "\" expects a boolean, got \"" + *raw + "\"");
}

TransformKind SpecParams::get_transform(const std::string& key,
                                        TransformKind fallback) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return fallback;
  if (*raw == "dct") return TransformKind::kDct2;
  if (*raw == "wht") return TransformKind::kWalshHadamard;
  if (*raw == "dst2") return TransformKind::kDst2;
  fail("parameter \"" + key + "\" expects one of dct, wht, dst2; got \"" +
       *raw + "\"");
}

void SpecParams::check_all_consumed() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (recognized_.count(key) == 0) unknown.push_back(key);
  }
  if (unknown.empty()) return;
  std::ostringstream out;
  out << "unknown parameter \"" << unknown.front() << "\" for " << kind_
      << " (valid:";
  bool first = true;
  for (const std::string& key : recognized_) {
    out << (first ? " " : ", ") << key;
    first = false;
  }
  out << ")";
  fail(out.str());
}

void SpecParams::fail(const std::string& message) const {
  throw std::invalid_argument("codec spec \"" + original_ + "\": " + message);
}

// ---------------------------------------------------------------------------
// CodecFactory

CodecFactory& CodecFactory::global() {
  static CodecFactory factory;
  return factory;
}

CodecFactory::CodecFactory() {
  // The three paper codecs live in this layer and self-register; the
  // baseline comparators register from baseline::register_comparator_codecs.
  register_codec(
      "dctchop", "DCT+Chop two-matmul codec (Eq. 4/6); CR = block^2/cf^2",
      [](const SpecParams& p, const Context& ctx) -> CodecPtr {
        DctChopConfig config;
        config.cf = p.get_size("cf", config.cf);
        config.block = p.get_size("block", config.block);
        config.transform = p.get_transform("transform", config.transform);
        config.height = p.get_size("h", 0);
        config.width = p.get_size("w", 0);
        return std::make_shared<DctChopCodec>(config, ctx);
      },
      {"dct+chop", "chop"});
  register_codec(
      "partial",
      "partial serialization (s x s serial chunks) over DCT+Chop (sec. 3.5.1)",
      [](const SpecParams& p, const Context& ctx) -> CodecPtr {
        PartialSerialConfig config;
        config.cf = p.get_size("cf", config.cf);
        config.block = p.get_size("block", config.block);
        config.transform = p.get_transform("transform", config.transform);
        config.subdivision = p.get_size("s", config.subdivision);
        config.height = p.get_size("h", 0);
        config.width = p.get_size("w", 0);
        return std::make_shared<PartialSerialCodec>(config, ctx);
      },
      {"ps", "dct+chop+ps"});
  register_codec(
      "triangle",
      "scatter/gather triangle packing over DCT+Chop (sec. 3.5.2)",
      [](const SpecParams& p, const Context& ctx) -> CodecPtr {
        DctChopConfig config;
        config.cf = p.get_size("cf", config.cf);
        config.block = p.get_size("block", config.block);
        config.transform = p.get_transform("transform", config.transform);
        config.height = p.get_size("h", 0);
        config.width = p.get_size("w", 0);
        return std::make_shared<TriangleCodec>(config, ctx);
      },
      {"sg", "dct+chop+sg"});
}

void CodecFactory::register_codec(const std::string& name,
                                  const std::string& summary, Builder build,
                                  std::vector<std::string> aliases) {
  std::lock_guard<std::mutex> lock(mutex_);
  codecs_[name] = Registration{summary, build, /*is_alias=*/false};
  for (const std::string& alias : aliases) {
    codecs_[alias] = Registration{summary, build, /*is_alias=*/true};
  }
}

CodecPtr CodecFactory::make(const std::string& spec,
                            const Context& ctx) const {
  const auto bad = [&spec](const std::string& message) -> void {
    throw std::invalid_argument("codec spec \"" + spec + "\": " + message);
  };

  const auto colon = spec.find(':');
  const std::string kind = trim(spec.substr(0, colon));
  if (kind.empty()) bad("missing codec name");

  std::map<std::string, std::string> values;
  if (colon != std::string::npos) {
    std::istringstream rest(spec.substr(colon + 1));
    std::string item;
    while (std::getline(rest, item, ',')) {
      item = trim(item);
      if (item.empty()) continue;
      const auto eq = item.find('=');
      if (eq == std::string::npos) {
        bad("expected key=value, got \"" + item + "\"");
      }
      const std::string key = trim(item.substr(0, eq));
      const std::string value = trim(item.substr(eq + 1));
      if (key.empty()) bad("empty key in \"" + item + "\"");
      if (value.empty()) bad("empty value for \"" + key + "\"");
      if (values.count(key) != 0) bad("duplicate key \"" + key + "\"");
      values[key] = value;
    }
  }

  Builder build;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = codecs_.find(kind);
    if (it == codecs_.end()) {
      std::ostringstream out;
      out << "unknown codec \"" << kind << "\" (known:";
      bool first = true;
      for (const auto& [name, reg] : codecs_) {
        if (reg.is_alias) continue;
        out << (first ? " " : ", ") << name;
        first = false;
      }
      out << ")";
      bad(out.str());
    }
    build = it->second.build;
  }

  const SpecParams params(kind, std::move(values), spec);
  CodecPtr codec = build(params, ctx);
  if (!codec) bad("builder returned null");
  params.check_all_consumed();
  return codec;
}

bool CodecFactory::known(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return codecs_.count(name) != 0;
}

std::vector<std::pair<std::string, std::string>> CodecFactory::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [name, reg] : codecs_) {
    if (!reg.is_alias) out.emplace_back(name, reg.summary);
  }
  return out;
}

CodecPtr make_codec(const std::string& spec, const Context& ctx) {
  return CodecFactory::global().make(spec, ctx);
}

}  // namespace aic::core
