#pragma once

#include <cstddef>

#include "core/chop.hpp"
#include "core/codec.hpp"
#include "core/dct.hpp"
#include "tensor/matmul.hpp"

namespace aic::core {

/// Configuration of the DCT+Chop compressor.
struct DctChopConfig {
  /// Height/width of the samples the codec is compiled for. Compressors
  /// on the target accelerators are compiled per shape, so the codec is
  /// bound to one resolution; feeding a different one throws.
  std::size_t height = 0;
  std::size_t width = 0;
  /// Chop factor CF ∈ [1, block]: the upper-left CF×CF coefficients of
  /// every block are retained. CR = block²/CF² (Eq. 3).
  std::size_t cf = 4;
  /// Transform block edge (8 in the paper and in JPEG).
  std::size_t block = kDefaultBlock;
  /// Block transform family; DCT-II is the paper's choice, the others
  /// implement the §6 alternative-transform future work.
  TransformKind transform = TransformKind::kDct2;
};

/// The paper's core contribution (§3.2–§3.4): a lossy fixed-rate codec
/// that is, end to end, two matrix multiplications per direction —
///
///   compress    Y  = LHS · A · RHS     (Eq. 4)
///   decompress  A' = RHS · Y · LHS     (Eq. 6)
///
/// with LHS = M·T_L precomputed at construction ("compile time"). Every
/// (batch, channel) plane is an independent product, giving the
/// BD·C·n²/64-way parallelism of §3.2.
class DctChopCodec final : public Codec {
 public:
  explicit DctChopCodec(DctChopConfig config);

  std::string name() const override;
  double compression_ratio() const override;
  tensor::Shape compressed_shape(const tensor::Shape& input) const override;
  tensor::Tensor compress(const tensor::Tensor& input) const override;
  tensor::Tensor decompress(const tensor::Tensor& packed,
                            const tensor::Shape& original) const override;

  const DctChopConfig& config() const { return config_; }
  /// The precomputed LHS operator for the height dimension.
  const tensor::Tensor& lhs() const { return lhs_h_; }
  /// The precomputed RHS operator for the width dimension.
  const tensor::Tensor& rhs() const { return rhs_w_; }

  /// Closed-form FLOP count of compressing one n×n plane (Eq. 5),
  /// using the (2k−1)-ops-per-dot-product convention of the paper.
  static std::size_t flops_compress(std::size_t n, std::size_t cf,
                                    std::size_t block = kDefaultBlock);
  /// Closed-form FLOP count of decompressing one plane (Eq. 7).
  static std::size_t flops_decompress(std::size_t n, std::size_t cf,
                                      std::size_t block = kDefaultBlock);

  /// Eq. 5 generalized to one h×w plane (the two chained matmul costs).
  static std::size_t flops_compress_hw(std::size_t h, std::size_t w,
                                       std::size_t cf,
                                       std::size_t block = kDefaultBlock);
  /// Eq. 7 generalized to one h×w plane.
  static std::size_t flops_decompress_hw(std::size_t h, std::size_t w,
                                         std::size_t cf,
                                         std::size_t block = kDefaultBlock);

 private:
  DctChopConfig config_;
  tensor::Tensor lhs_h_;  // (CF·H/8) × H
  tensor::Tensor rhs_w_;  // W × (CF·W/8)
  tensor::Tensor lhs_w_;  // (CF·W/8) × W  (decompression right operand)
  tensor::Tensor rhs_h_;  // H × (CF·H/8)  (decompression left operand)
  // Verified chop structure of the operators above, handed to the
  // structurally-sparse sandwich kernel.
  tensor::SandwichOptions compress_bands_;
  tensor::SandwichOptions decompress_bands_;
};

}  // namespace aic::core
