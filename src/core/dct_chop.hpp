#pragma once

#include <cstddef>
#include <memory>

#include "core/chop.hpp"
#include "core/codec.hpp"
#include "core/dct.hpp"
#include "core/plan.hpp"
#include "tensor/matmul.hpp"

namespace aic::obs {
class Histogram;
}  // namespace aic::obs

namespace aic::core {

/// Configuration of the DCT+Chop compressor.
struct DctChopConfig {
  /// Height/width of the samples the codec is compiled for. Non-zero
  /// pins the codec to one resolution — the operands are resolved
  /// eagerly at construction and feeding a different shape throws, the
  /// paper's per-shape compile contract (§3.1). Zero (the default) makes
  /// the codec shape-agnostic: the plan for each incoming resolution is
  /// resolved at compress() time from the codec's context's PlanCache.
  std::size_t height = 0;
  std::size_t width = 0;
  /// Chop factor CF ∈ [1, block]: the upper-left CF×CF coefficients of
  /// every block are retained. CR = block²/CF² (Eq. 3).
  std::size_t cf = 4;
  /// Transform block edge (8 in the paper and in JPEG).
  std::size_t block = kDefaultBlock;
  /// Block transform family; DCT-II is the paper's choice, the others
  /// implement the §6 alternative-transform future work.
  TransformKind transform = TransformKind::kDct2;
};

/// The paper's core contribution (§3.2–§3.4): a lossy fixed-rate codec
/// that is, end to end, two matrix multiplications per direction —
///
///   compress    Y  = LHS · A · RHS     (Eq. 4)
///   decompress  A' = RHS · Y · LHS     (Eq. 6)
///
/// with LHS = M·T_L precomputed in a DctChopPlan ("compile time"). The
/// codec itself is a thin stateful shell — stats and latency metrics —
/// over the immutable plan; plans are shared through the PlanCache, so
/// two codecs at the same (shape, cf, block, transform) execute the same
/// operand storage.
class DctChopCodec final : public Codec {
 public:
  explicit DctChopCodec(DctChopConfig config,
                        Context ctx = Context::process_default());

  std::string name() const override;
  std::string spec() const override;
  double compression_ratio() const override;
  tensor::Shape compressed_shape(const tensor::Shape& input) const override;
  tensor::Tensor compress(const tensor::Tensor& input) const override;
  tensor::Tensor decompress(const tensor::Tensor& packed,
                            const tensor::Shape& original) const override;
  /// Zero-allocation variants when `out` already has the right shape:
  /// the plan executes straight into its storage.
  void compress_into(const tensor::Tensor& input,
                     tensor::Tensor& out) const override;
  void decompress_into(const tensor::Tensor& packed,
                       const tensor::Shape& original,
                       tensor::Tensor& out) const override;

  const DctChopConfig& config() const { return config_; }
  /// True when the codec is pinned to one resolution.
  bool pinned() const { return pinned_ != nullptr; }

  /// The compiled plan serving a h×w input: the pinned plan, or a
  /// PlanCache resolution for shape-agnostic codecs.
  std::shared_ptr<const DctChopPlan> plan_for(std::size_t height,
                                              std::size_t width) const;

  /// The precomputed LHS operator for the height dimension. Requires a
  /// pinned codec (shape-agnostic codecs have one pair per resolution).
  const tensor::Tensor& lhs() const;
  /// The precomputed RHS operator for the width dimension (pinned only).
  const tensor::Tensor& rhs() const;

  /// Closed-form FLOP count of compressing one n×n plane (Eq. 5),
  /// using the (2k−1)-ops-per-dot-product convention of the paper.
  static std::size_t flops_compress(std::size_t n, std::size_t cf,
                                    std::size_t block = kDefaultBlock);
  /// Closed-form FLOP count of decompressing one plane (Eq. 7).
  static std::size_t flops_decompress(std::size_t n, std::size_t cf,
                                      std::size_t block = kDefaultBlock);

  /// Eq. 5 generalized to one h×w plane (the two chained matmul costs).
  static std::size_t flops_compress_hw(std::size_t h, std::size_t w,
                                       std::size_t cf,
                                       std::size_t block = kDefaultBlock);
  /// Eq. 7 generalized to one h×w plane.
  static std::size_t flops_decompress_hw(std::size_t h, std::size_t w,
                                         std::size_t cf,
                                         std::size_t block = kDefaultBlock);

 private:
  DctChopConfig config_;
  // Context-scoped latency series, resolved once at construction (registry
  // lookups take a mutex; instruments outlive the process).
  obs::Histogram& compress_latency_;
  obs::Histogram& decompress_latency_;
  std::shared_ptr<const DctChopPlan> pinned_;  // null when shape-agnostic
};

}  // namespace aic::core
