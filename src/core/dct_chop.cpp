#include "core/dct_chop.hpp"

#include <sstream>
#include <stdexcept>

#include "tensor/matmul.hpp"

namespace aic::core {

using tensor::Shape;
using tensor::Tensor;

DctChopCodec::DctChopCodec(DctChopConfig config) : config_(config) {
  const auto& c = config_;
  if (c.height == 0 || c.width == 0 || c.block == 0 ||
      c.height % c.block != 0 || c.width % c.block != 0) {
    throw std::invalid_argument(
        "DctChopCodec: height/width must be positive multiples of block");
  }
  if (c.cf == 0 || c.cf > c.block) {
    throw std::invalid_argument("DctChopCodec: cf must be in [1, block]");
  }
  lhs_h_ = make_lhs(c.height, c.cf, c.block, c.transform);
  rhs_w_ = make_rhs(c.width, c.cf, c.block, c.transform);
  lhs_w_ = make_lhs(c.width, c.cf, c.block, c.transform);
  rhs_h_ = make_rhs(c.height, c.cf, c.block, c.transform);
}

std::string DctChopCodec::name() const {
  std::ostringstream out;
  out << transform_name(config_.transform) << "+chop(cf=" << config_.cf
      << ",block=" << config_.block << ")";
  return out.str();
}

double DctChopCodec::compression_ratio() const {
  return chop_ratio(config_.cf, config_.block);
}

Shape DctChopCodec::compressed_shape(const Shape& input) const {
  if (input.rank() != 4) {
    throw std::invalid_argument("DctChopCodec: input must be BCHW");
  }
  if (input[2] != config_.height || input[3] != config_.width) {
    throw std::invalid_argument(
        "DctChopCodec: codec compiled for " + std::to_string(config_.height) +
        "x" + std::to_string(config_.width) + ", got " + input.to_string());
  }
  const std::size_t ch = config_.cf * config_.height / config_.block;
  const std::size_t cw = config_.cf * config_.width / config_.block;
  return Shape::bchw(input[0], input[1], ch, cw);
}

Tensor DctChopCodec::compress(const Tensor& input) const {
  Tensor out(compressed_shape(input.shape()));
  tensor::sandwich_planes(lhs_h_, input, rhs_w_, out);
  return out;
}

Tensor DctChopCodec::decompress(const Tensor& packed,
                                const Shape& original) const {
  if (packed.shape() != compressed_shape(original)) {
    throw std::invalid_argument("DctChopCodec: packed shape mismatch");
  }
  Tensor out(original);
  // Eq. 6: A' = RHS · Y · LHS — the same operators with roles swapped.
  tensor::sandwich_planes(rhs_h_, packed, lhs_w_, out);
  return out;
}

std::size_t DctChopCodec::flops_compress(std::size_t n, std::size_t cf,
                                         std::size_t block) {
  // Eq. 5 generalized to any block edge b:
  //   (2n−1) · (CF·n/b) · (n + CF·n/b)
  const std::size_t cn = cf * n / block;
  return (2 * n - 1) * cn * (n + cn);
}

std::size_t DctChopCodec::flops_decompress(std::size_t n, std::size_t cf,
                                           std::size_t block) {
  // Eq. 7 generalized: (2·CF·n/b − 1) · n · (CF·n/b + n)
  const std::size_t cn = cf * n / block;
  return (2 * cn - 1) * n * (cn + n);
}

}  // namespace aic::core
