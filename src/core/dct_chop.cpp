#include "core/dct_chop.hpp"

#include <sstream>
#include <stdexcept>

#include "core/plan_cache.hpp"
#include "io/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/timer.hpp"
#include "tensor/matmul.hpp"

namespace aic::core {

using tensor::Shape;
using tensor::Tensor;

DctChopCodec::DctChopCodec(DctChopConfig config, Context ctx)
    : Codec(std::move(ctx)),
      config_(config),
      compress_latency_(ctx_.histogram("codec.compress.ns")),
      decompress_latency_(ctx_.histogram("codec.decompress.ns")) {
  const auto& c = config_;
  if (c.block == 0 || c.cf == 0 || c.cf > c.block) {
    throw std::invalid_argument("DctChopCodec: cf must be in [1, block]");
  }
  if (c.height != 0 || c.width != 0) {
    // Pinned mode: compile (or share) the plan now, validating geometry
    // exactly the way the per-shape constructor always did.
    pinned_ = resolve_dct_chop_plan(ctx_, c.height, c.width, c.cf, c.block,
                                    c.transform);
  }
}

std::shared_ptr<const DctChopPlan> DctChopCodec::plan_for(
    std::size_t height, std::size_t width) const {
  if (pinned_) {
    if (height != config_.height || width != config_.width) {
      throw std::invalid_argument(
          "DctChopCodec: codec compiled for " + std::to_string(config_.height) +
          "x" + std::to_string(config_.width) + ", got " +
          std::to_string(height) + "x" + std::to_string(width));
    }
    return pinned_;
  }
  return resolve_dct_chop_plan(ctx_, height, width, config_.cf, config_.block,
                               config_.transform);
}

const Tensor& DctChopCodec::lhs() const {
  if (!pinned_) {
    throw std::logic_error(
        "DctChopCodec::lhs: shape-agnostic codec has no pinned operands");
  }
  return pinned_->lhs_h();
}

const Tensor& DctChopCodec::rhs() const {
  if (!pinned_) {
    throw std::logic_error(
        "DctChopCodec::rhs: shape-agnostic codec has no pinned operands");
  }
  return pinned_->rhs_w();
}

std::string DctChopCodec::name() const {
  std::ostringstream out;
  out << transform_name(config_.transform) << "+chop(cf=" << config_.cf
      << ",block=" << config_.block << ")";
  return out.str();
}

std::string DctChopCodec::spec() const {
  std::ostringstream out;
  out << "dctchop:cf=" << config_.cf << ",block=" << config_.block;
  if (config_.transform != TransformKind::kDct2) {
    out << ",transform=" << transform_name(config_.transform);
  }
  if (pinned_) {
    out << ",h=" << config_.height << ",w=" << config_.width;
  }
  return out.str();
}

double DctChopCodec::compression_ratio() const {
  return chop_ratio(config_.cf, config_.block);
}

Shape DctChopCodec::compressed_shape(const Shape& input) const {
  if (input.rank() != 4) {
    throw std::invalid_argument("DctChopCodec: input must be BCHW");
  }
  if (pinned_ &&
      (input[2] != config_.height || input[3] != config_.width)) {
    throw std::invalid_argument(
        "DctChopCodec: codec compiled for " + std::to_string(config_.height) +
        "x" + std::to_string(config_.width) + ", got " + input.to_string());
  }
  const std::size_t h = input[2];
  const std::size_t w = input[3];
  if (h == 0 || w == 0 || h % config_.block != 0 || w % config_.block != 0) {
    throw std::invalid_argument(
        "DctChopCodec: input height/width must be positive multiples of "
        "block, got " +
        input.to_string());
  }
  const std::size_t ch = config_.cf * h / config_.block;
  const std::size_t cw = config_.cf * w / config_.block;
  return Shape::bchw(input[0], input[1], ch, cw);
}

Tensor DctChopCodec::compress(const Tensor& input) const {
  Tensor out;
  compress_into(input, out);
  return out;
}

void DctChopCodec::compress_into(const Tensor& input, Tensor& out) const {
  AIC_TRACE_SCOPE("codec.compress");
  // Route the plan executor's parallel_for (and nested gemms) onto this
  // codec's session pool.
  Context::PoolScope pool_scope(ctx_);
  runtime::Timer timer;
  const Shape packed_shape = compressed_shape(input.shape());
  if (out.shape() != packed_shape) out = Tensor(packed_shape);
  const std::shared_ptr<const DctChopPlan> plan =
      plan_for(input.shape()[2], input.shape()[3]);
  plan->compress_into(input, out);
  const std::size_t planes = input.shape()[0] * input.shape()[1];
  const std::uint64_t nanos = timer.nanos();
  stats_.record_compress(planes,
                         planes * flops_compress_hw(input.shape()[2],
                                                    input.shape()[3],
                                                    config_.cf, config_.block),
                         input.size_bytes(), out.size_bytes(), nanos);
  compress_latency_.record(nanos);
}

Tensor DctChopCodec::decompress(const Tensor& packed,
                                const Shape& original) const {
  Tensor out;
  decompress_into(packed, original, out);
  return out;
}

void DctChopCodec::decompress_into(const Tensor& packed,
                                   const Shape& original, Tensor& out) const {
  AIC_TRACE_SCOPE("codec.decompress");
  Context::PoolScope pool_scope(ctx_);
  runtime::Timer timer;
  if (packed.shape() != compressed_shape(original)) {
    // The packed tensor is decode-side input (it may come straight from
    // an archive), so a mismatch is a data error, not a caller bug.
    io::raise_corrupt(io::CorruptKind::kPayloadMismatch,
                      "DctChopCodec: packed shape " +
                          packed.shape().to_string() + " does not match " +
                          compressed_shape(original).to_string() + " for " +
                          original.to_string());
  }
  const std::shared_ptr<const DctChopPlan> plan =
      plan_for(original[2], original[3]);
  if (out.shape() != original) out = Tensor(original);
  plan->decompress_into(packed, out);
  const std::size_t planes = original[0] * original[1];
  const std::uint64_t nanos = timer.nanos();
  stats_.record_decompress(planes,
                           planes * flops_decompress_hw(original[2],
                                                        original[3],
                                                        config_.cf,
                                                        config_.block),
                           packed.size_bytes(), out.size_bytes(), nanos);
  decompress_latency_.record(nanos);
}

std::size_t DctChopCodec::flops_compress(std::size_t n, std::size_t cf,
                                         std::size_t block) {
  // Eq. 5 generalized to any block edge b:
  //   (2n−1) · (CF·n/b) · (n + CF·n/b)
  const std::size_t cn = cf * n / block;
  return (2 * n - 1) * cn * (n + cn);
}

std::size_t DctChopCodec::flops_decompress(std::size_t n, std::size_t cf,
                                           std::size_t block) {
  // Eq. 7 generalized: (2·CF·n/b − 1) · n · (CF·n/b + n)
  const std::size_t cn = cf * n / block;
  return (2 * cn - 1) * n * (cn + n);
}

std::size_t DctChopCodec::flops_compress_hw(std::size_t h, std::size_t w,
                                            std::size_t cf,
                                            std::size_t block) {
  // (h×w)·(w×cw) then (ch×h)·(h×cw), (2k−1) ops per dot product.
  const std::size_t ch = cf * h / block;
  const std::size_t cw = cf * w / block;
  return (2 * w - 1) * h * cw + (2 * h - 1) * ch * cw;
}

std::size_t DctChopCodec::flops_decompress_hw(std::size_t h, std::size_t w,
                                              std::size_t cf,
                                              std::size_t block) {
  // (ch×cw)·(cw×w) then (h×ch)·(ch×w).
  const std::size_t ch = cf * h / block;
  const std::size_t cw = cf * w / block;
  return (2 * cw - 1) * ch * w + (2 * ch - 1) * h * w;
}

}  // namespace aic::core
