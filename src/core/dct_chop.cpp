#include "core/dct_chop.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/timer.hpp"
#include "tensor/matmul.hpp"

namespace aic::core {

using tensor::BandedSpec;
using tensor::Shape;
using tensor::Tensor;

DctChopCodec::DctChopCodec(DctChopConfig config) : config_(config) {
  const auto& c = config_;
  if (c.height == 0 || c.width == 0 || c.block == 0 ||
      c.height % c.block != 0 || c.width % c.block != 0) {
    throw std::invalid_argument(
        "DctChopCodec: height/width must be positive multiples of block");
  }
  if (c.cf == 0 || c.cf > c.block) {
    throw std::invalid_argument("DctChopCodec: cf must be in [1, block]");
  }
  lhs_h_ = make_lhs(c.height, c.cf, c.block, c.transform);
  rhs_w_ = make_rhs(c.width, c.cf, c.block, c.transform);
  lhs_w_ = make_lhs(c.width, c.cf, c.block, c.transform);
  rhs_h_ = make_rhs(c.height, c.cf, c.block, c.transform);

  // Chop operators are block-banded by construction (Fig. 4): LHS keeps
  // CF rows per 8-column block, RHS = LHSᵀ. Verify once at "compile time"
  // and hand the structure to the sandwich kernel; an operator that ever
  // stops matching simply runs on the dense path.
  const BandedSpec lhs_spec{c.cf, c.block};  // (CF·n/8)×n shaped operators
  const BandedSpec rhs_spec{c.block, c.cf};  // n×(CF·n/8) shaped operators
  if (tensor::is_block_banded(lhs_h_, lhs_spec) &&
      tensor::is_block_banded(rhs_w_, rhs_spec)) {
    compress_bands_ = {.lhs_bands = lhs_spec, .rhs_bands = rhs_spec};
  }
  if (tensor::is_block_banded(rhs_h_, rhs_spec) &&
      tensor::is_block_banded(lhs_w_, lhs_spec)) {
    decompress_bands_ = {.lhs_bands = rhs_spec, .rhs_bands = lhs_spec};
  }
}

std::string DctChopCodec::name() const {
  std::ostringstream out;
  out << transform_name(config_.transform) << "+chop(cf=" << config_.cf
      << ",block=" << config_.block << ")";
  return out.str();
}

double DctChopCodec::compression_ratio() const {
  return chop_ratio(config_.cf, config_.block);
}

Shape DctChopCodec::compressed_shape(const Shape& input) const {
  if (input.rank() != 4) {
    throw std::invalid_argument("DctChopCodec: input must be BCHW");
  }
  if (input[2] != config_.height || input[3] != config_.width) {
    throw std::invalid_argument(
        "DctChopCodec: codec compiled for " + std::to_string(config_.height) +
        "x" + std::to_string(config_.width) + ", got " + input.to_string());
  }
  const std::size_t ch = config_.cf * config_.height / config_.block;
  const std::size_t cw = config_.cf * config_.width / config_.block;
  return Shape::bchw(input[0], input[1], ch, cw);
}

Tensor DctChopCodec::compress(const Tensor& input) const {
  AIC_TRACE_SCOPE("codec.compress");
  runtime::Timer timer;
  Tensor out(compressed_shape(input.shape()));
  tensor::sandwich_planes_into(lhs_h_, input, rhs_w_, out, compress_bands_);
  const std::size_t planes = input.shape()[0] * input.shape()[1];
  const std::uint64_t nanos = timer.nanos();
  stats_.record_compress(planes,
                         planes * flops_compress_hw(config_.height,
                                                    config_.width, config_.cf,
                                                    config_.block),
                         input.size_bytes(), out.size_bytes(), nanos);
  static obs::Histogram& latency =
      obs::Registry::global().histogram("codec.compress.ns");
  latency.record(nanos);
  return out;
}

Tensor DctChopCodec::decompress(const Tensor& packed,
                                const Shape& original) const {
  AIC_TRACE_SCOPE("codec.decompress");
  runtime::Timer timer;
  if (packed.shape() != compressed_shape(original)) {
    throw std::invalid_argument("DctChopCodec: packed shape mismatch");
  }
  Tensor out(original);
  // Eq. 6: A' = RHS · Y · LHS — the same operators with roles swapped.
  tensor::sandwich_planes_into(rhs_h_, packed, lhs_w_, out,
                               decompress_bands_);
  const std::size_t planes = original[0] * original[1];
  const std::uint64_t nanos = timer.nanos();
  stats_.record_decompress(planes,
                           planes * flops_decompress_hw(config_.height,
                                                        config_.width,
                                                        config_.cf,
                                                        config_.block),
                           packed.size_bytes(), out.size_bytes(), nanos);
  static obs::Histogram& latency =
      obs::Registry::global().histogram("codec.decompress.ns");
  latency.record(nanos);
  return out;
}

std::size_t DctChopCodec::flops_compress(std::size_t n, std::size_t cf,
                                         std::size_t block) {
  // Eq. 5 generalized to any block edge b:
  //   (2n−1) · (CF·n/b) · (n + CF·n/b)
  const std::size_t cn = cf * n / block;
  return (2 * n - 1) * cn * (n + cn);
}

std::size_t DctChopCodec::flops_decompress(std::size_t n, std::size_t cf,
                                           std::size_t block) {
  // Eq. 7 generalized: (2·CF·n/b − 1) · n · (CF·n/b + n)
  const std::size_t cn = cf * n / block;
  return (2 * cn - 1) * n * (cn + n);
}

std::size_t DctChopCodec::flops_compress_hw(std::size_t h, std::size_t w,
                                            std::size_t cf,
                                            std::size_t block) {
  // (h×w)·(w×cw) then (ch×h)·(h×cw), (2k−1) ops per dot product.
  const std::size_t ch = cf * h / block;
  const std::size_t cw = cf * w / block;
  return (2 * w - 1) * h * cw + (2 * h - 1) * ch * cw;
}

std::size_t DctChopCodec::flops_decompress_hw(std::size_t h, std::size_t w,
                                              std::size_t cf,
                                              std::size_t block) {
  // (ch×cw)·(cw×w) then (h×ch)·(ch×w).
  const std::size_t ch = cf * h / block;
  const std::size_t cw = cf * w / block;
  return (2 * cw - 1) * ch * w + (2 * ch - 1) * h * w;
}

}  // namespace aic::core
