#pragma once

#include <string>

#include "core/codec.hpp"
#include "tensor/tensor.hpp"

namespace aic::core {

/// One rate/distortion measurement of a codec on a tensor.
struct RateDistortion {
  std::string codec;
  double compression_ratio = 0.0;
  double mse = 0.0;
  double psnr_db = 0.0;
  double max_abs_error = 0.0;
  std::size_t uncompressed_bytes = 0;
  std::size_t compressed_bytes = 0;
};

/// Runs compress→decompress and measures fidelity. `peak` is the nominal
/// data range used for PSNR (1.0 for normalized images).
RateDistortion evaluate_codec(const Codec& codec, const tensor::Tensor& input,
                              double peak = 1.0);

}  // namespace aic::core
