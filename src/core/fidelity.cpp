#include "core/fidelity.hpp"

#include "tensor/ops.hpp"

namespace aic::core {

RateDistortion evaluate_codec(const Codec& codec, const tensor::Tensor& input,
                              double peak) {
  const tensor::Tensor packed = codec.compress(input);
  const tensor::Tensor restored = codec.decompress(packed, input.shape());
  RateDistortion result;
  result.codec = codec.name();
  result.compression_ratio = codec.compression_ratio();
  result.mse = tensor::mse(input, restored);
  result.psnr_db = tensor::psnr(input, restored, peak);
  result.max_abs_error = tensor::max_abs_error(input, restored);
  result.uncompressed_bytes = input.size_bytes();
  result.compressed_bytes = packed.size_bytes();
  return result;
}

}  // namespace aic::core
