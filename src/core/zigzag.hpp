#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace aic::core {

/// The JPEG zig-zag traversal order of an n×n block (Fig. 2): starts at
/// (0,0), walks anti-diagonals alternately up-right and down-left.
/// Returns n² (row, col) pairs; the result is a permutation of the block.
std::vector<std::pair<std::size_t, std::size_t>> zigzag_order(std::size_t n);

/// Flat (row-major) indices of the same traversal.
std::vector<std::size_t> zigzag_flat(std::size_t n);

/// Flat indices of the upper-left triangle of a cf-chopped block: entries
/// (r, c) of the cf×cf corner with r + c < cf, in zig-zag significance
/// order. These are the compile-time gather indices of §3.5.2.
/// `row_stride` is the width of the matrix the indices address.
std::vector<std::size_t> triangle_indices(std::size_t cf,
                                          std::size_t row_stride);

}  // namespace aic::core
