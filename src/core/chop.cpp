#include "core/chop.hpp"

#include <stdexcept>

#include "tensor/matmul.hpp"

namespace aic::core {

using tensor::Shape;
using tensor::Tensor;

namespace {

void validate(std::size_t n, std::size_t cf, std::size_t block) {
  if (block == 0 || n == 0 || n % block != 0) {
    throw std::invalid_argument("chop: n must be a positive multiple of block");
  }
  if (cf == 0 || cf > block) {
    throw std::invalid_argument("chop: cf must be in [1, block]");
  }
}

}  // namespace

Tensor chop_mask(std::size_t n, std::size_t cf, std::size_t block) {
  validate(n, cf, block);
  const std::size_t nblocks = n / block;
  Tensor m(Shape::matrix(cf * nblocks, n));
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    for (std::size_t r = 0; r < cf; ++r) {
      m.at(blk * cf + r, blk * block + r) = 1.0f;
    }
  }
  return m;
}

double chop_ratio(std::size_t cf, std::size_t block) {
  validate(block, cf, block);
  return static_cast<double>(block * block) / static_cast<double>(cf * cf);
}

double triangle_ratio(std::size_t cf, std::size_t block) {
  validate(block, cf, block);
  const double retained = static_cast<double>(cf * (cf + 1)) / 2.0;
  return static_cast<double>(block * block) / retained;
}

Tensor make_lhs(std::size_t n, std::size_t cf, std::size_t block,
                TransformKind kind) {
  validate(n, cf, block);
  return tensor::matmul(chop_mask(n, cf, block),
                        block_diagonal_transform(kind, n, block));
}

Tensor make_rhs(std::size_t n, std::size_t cf, std::size_t block,
                TransformKind kind) {
  return make_lhs(n, cf, block, kind).transposed();
}

}  // namespace aic::core
