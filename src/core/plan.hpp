#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/transforms.hpp"
#include "tensor/matmul.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace aic::core {

/// Codec families addressable through the plan cache and the factory.
enum class CodecKind : std::uint8_t {
  kDctChop = 0,
  kPartialSerial = 1,
  kTriangle = 2,
  kZfp = 3,
  kSz = 4,
  kJpeg = 5,
  kColorQuant = 6,
};

const char* codec_kind_name(CodecKind kind);

/// Identity of one compiled plan: everything the paper's "compile time"
/// step depends on (§3.1). Two resolutions with the same key share one
/// plan; anything that changes an operand changes the key.
struct PlanKey {
  CodecKind kind = CodecKind::kDctChop;
  TransformKind transform = TransformKind::kDct2;
  std::uint32_t block = 0;
  std::uint32_t cf = 0;
  /// Partial-serialization factor s (1 when not applicable).
  std::uint32_t subdivision = 1;
  std::uint64_t height = 0;
  std::uint64_t width = 0;
  /// Fixed-point codec parameter for the baseline comparators (zfp rate,
  /// sz error bound, jpeg quality — scaled by 1000 so the key stays
  /// integral and hashable without float equality).
  std::uint64_t param_milli = 0;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
  std::string to_string() const;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const noexcept;
};

/// An immutable compiled artifact: operands, index tables, banded specs
/// and an exact byte plan for one (codec kind, shape) pair. Plans are
/// built once, shared via shared_ptr through the PlanCache, and executed
/// by stateless `*_into` methods — executing a plan never mutates it and
/// never constructs an operand.
class CodecPlan {
 public:
  explicit CodecPlan(const PlanKey& key) : key_(key) {}
  virtual ~CodecPlan() = default;
  CodecPlan(const CodecPlan&) = delete;
  CodecPlan& operator=(const CodecPlan&) = delete;

  const PlanKey& key() const noexcept { return key_; }

  /// Bytes held resident by the plan (operands + index tables). This is
  /// the unit the PlanCache's LRU byte budget accounts in.
  virtual std::size_t resident_bytes() const = 0;

  /// Exact executor working set beyond the input and output buffers for
  /// one batch×channels call: per-worker sandwich scratch plus any
  /// staging tensors the executor allocates. This is the quantity accel
  /// memory-capacity checks must add to activation bytes.
  virtual std::size_t workspace_bytes(std::size_t batch,
                                      std::size_t channels) const = 0;

 private:
  PlanKey key_;
};

/// One (LHS, RHS) operand pair for dimension n. Eq. 4/6 give RHS = LHSᵀ,
/// so the pair is built from a single make_lhs() product; the transpose
/// is a cheap copy, and square plans share one pair for both axes.
struct ChopOperand {
  std::shared_ptr<const tensor::Tensor> lhs;  // (CF·n/block) × n
  std::shared_ptr<const tensor::Tensor> rhs;  // n × (CF·n/block), = lhsᵀ
};

/// Compiled plan for the paper's two-matmul codec (§3.2–3.4): operands
/// for both axes, verified band structure, and the sandwich executors.
class DctChopPlan final : public CodecPlan {
 public:
  explicit DctChopPlan(const PlanKey& key);

  // Operand views in the roles of Eq. 4 (compress) and Eq. 6 (decompress).
  const tensor::Tensor& lhs_h() const { return *op_h_.lhs; }
  const tensor::Tensor& rhs_w() const { return *op_w_.rhs; }
  const tensor::Tensor& rhs_h() const { return *op_h_.rhs; }
  const tensor::Tensor& lhs_w() const { return *op_w_.lhs; }
  const tensor::SandwichOptions& compress_bands() const {
    return compress_bands_;
  }
  const tensor::SandwichOptions& decompress_bands() const {
    return decompress_bands_;
  }
  /// True when H == W and both axes share one operand pair's storage.
  bool shares_square_operands() const {
    return op_h_.lhs.get() == op_w_.lhs.get();
  }

  tensor::Shape packed_shape(const tensor::Shape& input) const;

  /// Eq. 4: out[b,c] = LHS_H · in[b,c] · RHS_W. `out` must be preshaped.
  void compress_into(const tensor::Tensor& input, tensor::Tensor& out) const;
  /// Eq. 6: out[b,c] = RHS_H · packed[b,c] · LHS_W.
  void decompress_into(const tensor::Tensor& packed,
                       tensor::Tensor& out) const;

  std::size_t resident_bytes() const override;
  std::size_t workspace_bytes(std::size_t batch,
                              std::size_t channels) const override;

 private:
  ChopOperand op_h_;  // operands for the height axis
  ChopOperand op_w_;  // aliases op_h_ when the plan is square
  tensor::SandwichOptions compress_bands_;
  tensor::SandwichOptions decompress_bands_;
};

/// Compiled plan for partial serialization (§3.5.1): geometry of the s×s
/// chunk grid plus the shared chunk-resolution DctChopPlan. The chunk
/// plan is resolved through the PlanCache, so a 2× subdivided 32×32 plan
/// and a plain 16×16 plan share the same operand storage.
class PartialSerialPlan final : public CodecPlan {
 public:
  PartialSerialPlan(const PlanKey& key,
                    std::shared_ptr<const DctChopPlan> chunk_plan);

  const DctChopPlan& chunk_plan() const { return *chunk_plan_; }
  std::shared_ptr<const DctChopPlan> chunk_plan_ptr() const {
    return chunk_plan_;
  }
  std::size_t chunk_h() const { return chunk_h_; }
  std::size_t chunk_w() const { return chunk_w_; }

  tensor::Shape packed_shape(const tensor::Shape& input) const;

  std::size_t resident_bytes() const override;
  std::size_t workspace_bytes(std::size_t batch,
                              std::size_t channels) const override;

 private:
  std::shared_ptr<const DctChopPlan> chunk_plan_;
  std::size_t chunk_h_ = 0;
  std::size_t chunk_w_ = 0;
};

/// Compiled plan for the scatter/gather triangle variant (§3.5.2): the
/// inner chop plan plus the compile-time gather index table.
class TrianglePlan final : public CodecPlan {
 public:
  TrianglePlan(const PlanKey& key,
               std::shared_ptr<const DctChopPlan> inner_plan);

  const DctChopPlan& inner_plan() const { return *inner_plan_; }
  std::shared_ptr<const DctChopPlan> inner_plan_ptr() const {
    return inner_plan_;
  }
  std::size_t values_per_block() const { return per_block_; }
  std::size_t blocks_per_plane() const { return blocks_; }
  const std::vector<std::size_t>& plane_indices() const { return indices_; }

  tensor::Shape packed_shape(const tensor::Shape& input) const;

  /// Inner chop (Eq. 4) followed by the compile-time gather.
  void compress_into(const tensor::Tensor& input, tensor::Tensor& out) const;
  /// Scatter back into the chopped layout, then inner Eq. 6.
  void decompress_into(const tensor::Tensor& packed,
                       tensor::Tensor& out) const;

  std::size_t resident_bytes() const override;
  std::size_t workspace_bytes(std::size_t batch,
                              std::size_t channels) const override;

 private:
  std::shared_ptr<const DctChopPlan> inner_plan_;
  std::size_t per_block_ = 0;
  std::size_t blocks_ = 0;
  std::size_t chopped_h_ = 0;
  std::size_t chopped_w_ = 0;
  std::vector<std::size_t> indices_;
};

/// Key constructors. Each validates the geometry the way the original
/// codec constructors did and throws std::invalid_argument on misuse.
PlanKey dct_chop_plan_key(std::size_t height, std::size_t width,
                          std::size_t cf, std::size_t block,
                          TransformKind transform);
PlanKey partial_serial_plan_key(std::size_t height, std::size_t width,
                                std::size_t cf, std::size_t block,
                                TransformKind transform,
                                std::size_t subdivision);
PlanKey triangle_plan_key(std::size_t height, std::size_t width,
                          std::size_t cf, std::size_t block,
                          TransformKind transform);

class PlanCache;

/// Builds the plan for a core codec key (kDctChop / kPartialSerial /
/// kTriangle), resolving nested chunk/inner plans through `cache` — the
/// cache that requested the build, so composites stay within one
/// context's budget. Baseline kinds must supply their own builder.
std::shared_ptr<const CodecPlan> build_core_plan(const PlanKey& key,
                                                 PlanCache& cache);

}  // namespace aic::core
