#pragma once

#include <cstddef>

#include "core/dct.hpp"
#include "core/transforms.hpp"
#include "tensor/tensor.hpp"

namespace aic::core {

/// The chop mask M of Fig. 4: a (CF·n/block) × n matrix of CF×CF identity
/// blocks placed every `block` columns. `M · D · Mᵀ` extracts the
/// upper-left CF×CF corner of every block×block tile of D and packs the
/// corners into a dense (CF·n/block)² matrix.
///
/// Requires 1 <= cf <= block and n a multiple of block.
tensor::Tensor chop_mask(std::size_t n, std::size_t cf,
                         std::size_t block = kDefaultBlock);

/// Compression ratio of square chopping (Eq. 3): block² / CF².
double chop_ratio(std::size_t cf, std::size_t block = kDefaultBlock);

/// Compression ratio of the triangle (scatter/gather) variant (§3.5.2):
/// block² / (CF(CF+1)/2).
double triangle_ratio(std::size_t cf, std::size_t block = kDefaultBlock);

/// LHS = M · T_L, the (CF·n/block) × n compression operator applied on
/// the left of Eq. 4; precomputed once ("at compile time" in the paper).
/// `kind` selects the block transform (DCT-II by default; §6's
/// alternative-transform future work plugs in here).
tensor::Tensor make_lhs(std::size_t n, std::size_t cf,
                        std::size_t block = kDefaultBlock,
                        TransformKind kind = TransformKind::kDct2);

/// RHS = T_Lᵀ · Mᵀ = LHSᵀ, the n × (CF·n/block) right operator of Eq. 4.
tensor::Tensor make_rhs(std::size_t n, std::size_t cf,
                        std::size_t block = kDefaultBlock,
                        TransformKind kind = TransformKind::kDct2);

}  // namespace aic::core
