#include "core/zigzag.hpp"

#include <algorithm>

namespace aic::core {

std::vector<std::pair<std::size_t, std::size_t>> zigzag_order(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> order;
  if (n == 0) return order;
  order.reserve(n * n);
  for (std::size_t diag = 0; diag <= 2 * (n - 1); ++diag) {
    // Anti-diagonal `diag` holds entries with r + c == diag.
    const std::size_t r_lo = diag >= n ? diag - (n - 1) : 0;
    const std::size_t r_hi = std::min(diag, n - 1);
    if (diag % 2 == 0) {
      // Walk up-right: r descending.
      for (std::size_t r = r_hi + 1; r-- > r_lo;) {
        order.emplace_back(r, diag - r);
      }
    } else {
      // Walk down-left: r ascending.
      for (std::size_t r = r_lo; r <= r_hi; ++r) {
        order.emplace_back(r, diag - r);
      }
    }
  }
  return order;
}

std::vector<std::size_t> zigzag_flat(std::size_t n) {
  std::vector<std::size_t> flat;
  flat.reserve(n * n);
  for (const auto& [r, c] : zigzag_order(n)) flat.push_back(r * n + c);
  return flat;
}

std::vector<std::size_t> triangle_indices(std::size_t cf,
                                          std::size_t row_stride) {
  std::vector<std::size_t> indices;
  indices.reserve(cf * (cf + 1) / 2);
  for (const auto& [r, c] : zigzag_order(cf)) {
    if (r + c < cf) indices.push_back(r * row_stride + c);
  }
  return indices;
}

}  // namespace aic::core
