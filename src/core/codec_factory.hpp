#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/codec.hpp"
#include "core/transforms.hpp"

namespace aic::core {

/// Parsed form of a codec spec string `kind[:key=value[,key=value]*]`
/// (e.g. "dctchop:cf=4", "partial:cf=4,s=2", "zfp:rate=8").
///
/// Builders pull typed parameters out with the `get_*` accessors; every
/// accessor marks its key as recognized, so after the builder runs the
/// factory can diagnose unknown keys ("unknown parameter \"foo\" for
/// dctchop (valid: block, cf, h, transform, w)") instead of silently
/// ignoring typos.
class SpecParams {
 public:
  SpecParams(std::string kind, std::map<std::string, std::string> values,
             std::string original);

  const std::string& kind() const { return kind_; }
  const std::string& spec() const { return original_; }

  bool has(const std::string& key) const;
  std::size_t get_size(const std::string& key, std::size_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  TransformKind get_transform(const std::string& key,
                              TransformKind fallback) const;

  /// Throws std::invalid_argument naming every provided-but-unrecognized
  /// key. Called by the factory after the builder returns.
  void check_all_consumed() const;

  /// Error helper with the offending spec in the message.
  [[noreturn]] void fail(const std::string& message) const;

 private:
  const std::string* find(const std::string& key) const;

  std::string kind_;
  std::map<std::string, std::string> values_;
  std::string original_;
  mutable std::set<std::string> recognized_;
};

/// Process-wide registry mapping codec kind names to builders, so every
/// construction site — CLI, archive, rate control, trainer, benches,
/// graph builders — selects codecs through one spec-string grammar.
///
/// Core kinds (dctchop, partial, triangle) are registered on first use;
/// the baseline comparators live in a higher layer and register through
/// baseline::register_comparator_codecs() (static-library registrar
/// objects get dropped by the linker, so registration is an explicit,
/// idempotent call).
class CodecFactory {
 public:
  /// Builders receive the context the codec should live in — the factory
  /// registry itself is process-global (builders are stateless), but every
  /// codec instance is constructed into an explicit session.
  using Builder = std::function<CodecPtr(const SpecParams&, const Context&)>;

  static CodecFactory& global();

  /// Registers `name` (plus aliases) with a one-line summary for
  /// diagnostics and --help output. Re-registering a name replaces the
  /// previous builder (idempotent registration).
  void register_codec(const std::string& name, const std::string& summary,
                      Builder build, std::vector<std::string> aliases = {});

  /// Builds a codec from a spec string into `ctx`; throws
  /// std::invalid_argument with a diagnostic naming the known kinds /
  /// valid keys on malformed specs.
  CodecPtr make(const std::string& spec,
                const Context& ctx = Context::process_default()) const;

  bool known(const std::string& name) const;
  /// Primary names with summaries, sorted (aliases excluded).
  std::vector<std::pair<std::string, std::string>> list() const;

 private:
  CodecFactory();

  struct Registration {
    std::string summary;
    Builder build;
    bool is_alias = false;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Registration> codecs_;
};

/// Convenience for CodecFactory::global().make(spec, ctx).
CodecPtr make_codec(const std::string& spec,
                    const Context& ctx = Context::process_default());

}  // namespace aic::core
