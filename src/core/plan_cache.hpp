#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include <string>

#include "core/plan.hpp"
#include "runtime/context.hpp"

namespace aic::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace aic::obs

namespace aic::core {

/// Per-context cache of compiled codec plans, keyed by PlanKey, with
/// LRU eviction against a byte budget (the process-default context reads
/// `AIC_PLAN_CACHE_BYTES`, default 256 MiB, 0 = unbounded).
///
/// This is the repo's answer to the paper's compile-once/run-per-batch
/// split at production scale: the first request for a (codec, shape)
/// pair pays the operand build, every later request — from any thread,
/// any codec instance, any graph builder — is a shared_ptr copy.
///
/// Thread safety: resolve() is fully synchronized; builds happen under
/// the lock so a key is built exactly once (deterministic
/// `plan_cache.build_count`) and concurrent resolvers of the same key
/// block rather than duplicating work. The mutex is recursive because
/// composite plans (partial serialization, triangle) resolve their
/// chunk/inner plan through the cache from inside their own build.
///
/// Evicted plans stay alive as long as any codec still holds the
/// shared_ptr; eviction only drops the cache's reference.
class PlanCache {
 public:
  using BuildFn = std::function<std::shared_ptr<const CodecPlan>()>;

  /// The cache belonging to `ctx`, created on first use with the
  /// context's byte budget. The process-default context publishes metrics
  /// unprefixed (`plan_cache.*`, as the old singleton did); other contexts
  /// publish under `<obs_prefix>plan_cache.*` when they carry a prefix and
  /// stay silent otherwise. Lives as long as the context.
  static PlanCache& of(const Context& ctx);

  /// A standalone cache (tests); publishes obs metrics under
  /// `<metric_prefix>plan_cache.*` only when `publish_metrics` is set.
  explicit PlanCache(std::size_t byte_budget, bool publish_metrics = false,
                     const std::string& metric_prefix = {});

  /// Returns the cached plan for `key`, building it with `build` on a
  /// miss. When `build` is empty, `build_core_plan(key, *this)` is used
  /// (valid
  /// for the core codec kinds only).
  std::shared_ptr<const CodecPlan> resolve(const PlanKey& key,
                                           const BuildFn& build = {});

  /// Changes the byte budget and evicts immediately if over. 0 disables
  /// eviction.
  void set_byte_budget(std::size_t bytes);
  std::size_t byte_budget() const;

  std::size_t resident_bytes() const;
  std::size_t size() const;
  void clear();

  struct Snapshot {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t builds = 0;
    std::uint64_t evictions = 0;
    std::size_t resident_bytes = 0;
    std::size_t entries = 0;
  };
  Snapshot snapshot() const;

 private:
  struct Entry {
    std::shared_ptr<const CodecPlan> plan;
    std::size_t bytes = 0;
    std::list<PlanKey>::iterator lru_it;
  };

  /// Pointers into the global registry for this cache's metric series
  /// (instruments are never deleted, so the references stay valid).
  struct Instruments {
    obs::Counter* hit = nullptr;
    obs::Counter* miss = nullptr;
    obs::Counter* build_count = nullptr;
    obs::Counter* eviction = nullptr;
    obs::Histogram* build_ns = nullptr;
    obs::Gauge* resident_bytes = nullptr;
  };

  void touch(Entry& entry);
  void evict_to_budget();
  void publish_resident_locked();

  mutable std::recursive_mutex mutex_;
  std::list<PlanKey> lru_;  // front = most recently used
  std::unordered_map<PlanKey, Entry, PlanKeyHash> entries_;
  std::size_t byte_budget_ = 0;
  std::size_t resident_bytes_ = 0;
  bool publish_metrics_ = false;
  Instruments instruments_;
  Snapshot stats_;
};

/// Typed conveniences over PlanCache::of(ctx) for the core kinds.
std::shared_ptr<const DctChopPlan> resolve_dct_chop_plan(
    const Context& ctx, std::size_t height, std::size_t width, std::size_t cf,
    std::size_t block, TransformKind transform);
std::shared_ptr<const PartialSerialPlan> resolve_partial_serial_plan(
    const Context& ctx, std::size_t height, std::size_t width, std::size_t cf,
    std::size_t block, TransformKind transform, std::size_t subdivision);
std::shared_ptr<const TrianglePlan> resolve_triangle_plan(
    const Context& ctx, std::size_t height, std::size_t width, std::size_t cf,
    std::size_t block, TransformKind transform);

}  // namespace aic::core
