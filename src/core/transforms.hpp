#pragma once

#include <cstddef>
#include <string>

#include "tensor/tensor.hpp"

namespace aic::core {

/// Alternative orthonormal block transforms (§6 future work: "test using
/// the ZFP block transform instead of DCT-II"). Any orthonormal matrix
/// slots into the chop pipeline because Eq. 4/6 only require T·Tᵀ = I.
enum class TransformKind {
  /// DCT-II (Eq. 2) — the paper's default.
  kDct2,
  /// Walsh-Hadamard (sequency-ordered, normalized): ±1/√N entries, so
  /// the transform itself is multiply-free on real hardware — closer in
  /// spirit to ZFP's cheap integer block transform.
  kWalshHadamard,
  /// DST-II: the sine-basis sibling of the DCT; useful for data with
  /// zero boundary conditions.
  kDst2,
};

std::string transform_name(TransformKind kind);

/// The N×N orthonormal matrix of the chosen transform. N must be a
/// power of two for kWalshHadamard.
tensor::Tensor transform_matrix(TransformKind kind, std::size_t n);

/// Sequency-ordered Walsh-Hadamard matrix (rows sorted by sign-change
/// count, so "chop" keeps low-sequency rows the way it keeps
/// low-frequency DCT rows). n must be a power of two.
tensor::Tensor walsh_hadamard_matrix(std::size_t n);

/// DST-II orthonormal matrix.
tensor::Tensor dst2_matrix(std::size_t n);

/// Block-diagonal extension of any block transform (the T_L of Fig. 4).
tensor::Tensor block_diagonal_transform(TransformKind kind, std::size_t n,
                                        std::size_t block);

}  // namespace aic::core
