#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/codec.hpp"
#include "core/dct_chop.hpp"
#include "core/plan.hpp"

namespace aic::core {

/// Graphcore scatter/gather optimization (§3.5.2).
///
/// After DCT+Chop produces the CF×CF corner of each block, only the
/// upper-left *triangle* (r + c < CF, i.e. CF(CF+1)/2 values per block)
/// is significant, because the chopped square still contains
/// high-frequency corner coefficients. `torch.gather` with compile-time
/// indices packs the triangles densely; `torch.scatter` restores them
/// before the DCT+Chop decompression. CR improves from 64/CF² to
/// 64/(CF(CF+1)/2), a factor 2CF/(CF+1).
///
/// The gather index tables and the inner chop operands live in a
/// TrianglePlan shared through the PlanCache; the codec is the stateful
/// shell over it.
class TriangleCodec final : public Codec {
 public:
  explicit TriangleCodec(DctChopConfig config,
                         Context ctx = Context::process_default());

  std::string name() const override;
  std::string spec() const override;
  double compression_ratio() const override;
  tensor::Shape compressed_shape(const tensor::Shape& input) const override;
  tensor::Tensor compress(const tensor::Tensor& input) const override;
  tensor::Tensor decompress(const tensor::Tensor& packed,
                            const tensor::Shape& original) const override;

  const DctChopConfig& config() const { return config_; }
  bool pinned() const { return pinned_ != nullptr; }
  /// The shared inner DCT+Chop codec configuration (same shape mode).
  const DctChopCodec& inner() const { return *inner_; }

  /// The compiled plan serving a h×w input.
  std::shared_ptr<const TrianglePlan> plan_for(std::size_t height,
                                               std::size_t width) const;

  /// Retained coefficients per block: CF(CF+1)/2.
  std::size_t values_per_block() const { return per_block_; }
  /// The compile-time gather index table for one chopped plane (pinned
  /// codecs only — agnostic codecs hold one table per resolution).
  const std::vector<std::size_t>& plane_indices() const;

 private:
  DctChopConfig config_;
  std::shared_ptr<const TrianglePlan> pinned_;  // null when shape-agnostic
  std::unique_ptr<DctChopCodec> inner_;
  std::size_t per_block_ = 0;
};

}  // namespace aic::core
