#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/codec.hpp"
#include "core/dct_chop.hpp"

namespace aic::core {

/// Graphcore scatter/gather optimization (§3.5.2).
///
/// After DCT+Chop produces the CF×CF corner of each block, only the
/// upper-left *triangle* (r + c < CF, i.e. CF(CF+1)/2 values per block)
/// is significant, because the chopped square still contains
/// high-frequency corner coefficients. `torch.gather` with compile-time
/// indices packs the triangles densely; `torch.scatter` restores them
/// before the DCT+Chop decompression. CR improves from 64/CF² to
/// 64/(CF(CF+1)/2), a factor 2CF/(CF+1).
class TriangleCodec final : public Codec {
 public:
  explicit TriangleCodec(DctChopConfig config);

  std::string name() const override;
  double compression_ratio() const override;
  tensor::Shape compressed_shape(const tensor::Shape& input) const override;
  tensor::Tensor compress(const tensor::Tensor& input) const override;
  tensor::Tensor decompress(const tensor::Tensor& packed,
                            const tensor::Shape& original) const override;

  const DctChopCodec& inner() const { return *inner_; }
  /// Retained coefficients per block: CF(CF+1)/2.
  std::size_t values_per_block() const { return per_block_; }
  /// The compile-time gather index table for one chopped plane.
  const std::vector<std::size_t>& plane_indices() const { return indices_; }

 private:
  std::unique_ptr<DctChopCodec> inner_;
  std::size_t per_block_ = 0;
  std::size_t blocks_ = 0;          // blocks per plane
  std::size_t chopped_h_ = 0;       // CF·H/8
  std::size_t chopped_w_ = 0;       // CF·W/8
  std::vector<std::size_t> indices_;  // gather indices within a plane
};

}  // namespace aic::core
