#pragma once

#include <atomic>
#include <cstdint>

namespace aic::core {

/// Counters for one codec direction (compress or decompress).
struct CodecOpStats {
  std::uint64_t calls = 0;
  /// (batch × channel) planes processed — the §3.2 parallelism unit.
  std::uint64_t planes = 0;
  /// Closed-form FLOPs of the two-matmul pipeline (Eq. 5 / Eq. 7).
  std::uint64_t flops = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  double seconds = 0.0;

  double gflops_per_second() const {
    return seconds > 0.0 ? static_cast<double>(flops) / seconds / 1e9 : 0.0;
  }
  /// Throughput over the input side of the direction, GB/s.
  double gigabytes_per_second() const {
    return seconds > 0.0 ? static_cast<double>(bytes_in) / seconds / 1e9
                         : 0.0;
  }
};

/// Point-in-time copy of a codec's counters.
struct CodecStatsSnapshot {
  CodecOpStats compress;
  CodecOpStats decompress;

  double seconds() const { return compress.seconds + decompress.seconds; }
  std::uint64_t flops() const { return compress.flops + decompress.flops; }
  std::uint64_t planes() const { return compress.planes + decompress.planes; }
};

/// Thread-safe cumulative counters a codec updates on every compress /
/// decompress call. Cheap enough to stay on permanently: two relaxed
/// atomic adds per field per call, no locks on the plane hot path.
class CodecStats {
 public:
  void record_compress(std::uint64_t planes, std::uint64_t flops,
                       std::uint64_t bytes_in, std::uint64_t bytes_out,
                       std::uint64_t nanos) noexcept {
    record(compress_, planes, flops, bytes_in, bytes_out, nanos);
  }

  void record_decompress(std::uint64_t planes, std::uint64_t flops,
                         std::uint64_t bytes_in, std::uint64_t bytes_out,
                         std::uint64_t nanos) noexcept {
    record(decompress_, planes, flops, bytes_in, bytes_out, nanos);
  }

  CodecStatsSnapshot snapshot() const noexcept {
    CodecStatsSnapshot out;
    load(compress_, out.compress);
    load(decompress_, out.decompress);
    return out;
  }

  void reset() noexcept {
    clear(compress_);
    clear(decompress_);
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> planes{0};
    std::atomic<std::uint64_t> flops{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    /// Wall time in nanoseconds (integer so plain fetch_add suffices).
    std::atomic<std::uint64_t> nanos{0};
  };

  static void record(Cell& cell, std::uint64_t planes, std::uint64_t flops,
                     std::uint64_t bytes_in, std::uint64_t bytes_out,
                     std::uint64_t nanos) noexcept {
    cell.calls.fetch_add(1, std::memory_order_relaxed);
    cell.planes.fetch_add(planes, std::memory_order_relaxed);
    cell.flops.fetch_add(flops, std::memory_order_relaxed);
    cell.bytes_in.fetch_add(bytes_in, std::memory_order_relaxed);
    cell.bytes_out.fetch_add(bytes_out, std::memory_order_relaxed);
    cell.nanos.fetch_add(nanos, std::memory_order_relaxed);
  }

  static void load(const Cell& cell, CodecOpStats& out) noexcept {
    out.calls = cell.calls.load(std::memory_order_relaxed);
    out.planes = cell.planes.load(std::memory_order_relaxed);
    out.flops = cell.flops.load(std::memory_order_relaxed);
    out.bytes_in = cell.bytes_in.load(std::memory_order_relaxed);
    out.bytes_out = cell.bytes_out.load(std::memory_order_relaxed);
    out.seconds = static_cast<double>(cell.nanos.load(
                      std::memory_order_relaxed)) /
                  1e9;
  }

  static void clear(Cell& cell) noexcept {
    cell.calls.store(0, std::memory_order_relaxed);
    cell.planes.store(0, std::memory_order_relaxed);
    cell.flops.store(0, std::memory_order_relaxed);
    cell.bytes_in.store(0, std::memory_order_relaxed);
    cell.bytes_out.store(0, std::memory_order_relaxed);
    cell.nanos.store(0, std::memory_order_relaxed);
  }

  Cell compress_;
  Cell decompress_;
};

}  // namespace aic::core
