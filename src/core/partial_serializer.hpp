#pragma once

#include <cstddef>
#include <memory>

#include "core/codec.hpp"
#include "core/dct_chop.hpp"
#include "core/plan.hpp"

namespace aic::core {

/// Partial-serialization optimization (§3.5.1).
///
/// Instead of compressing a BD×C×n×n tensor in one shot — which needs
/// LHS/RHS operators of size (CF·n/8)×n that can exceed a compute unit's
/// local memory — the sample is subdivided by a factor `s` into s×s
/// chunks of size (n/s)×(n/s). The chunks are processed *serially* with
/// a codec compiled for the chunk resolution, shrinking the working set
/// by s² at the cost of s² sequential launches.
struct PartialSerialConfig {
  /// Zero height/width makes the codec shape-agnostic (plans resolved
  /// per incoming resolution from the PlanCache); non-zero pins it.
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t cf = 4;
  std::size_t block = kDefaultBlock;
  TransformKind transform = TransformKind::kDct2;
  /// Subdivision factor s >= 1; s == 1 degenerates to plain DCT+Chop.
  std::size_t subdivision = 2;
};

class PartialSerialCodec final : public Codec {
 public:
  explicit PartialSerialCodec(PartialSerialConfig config,
                              Context ctx = Context::process_default());

  std::string name() const override;
  std::string spec() const override;
  double compression_ratio() const override;
  tensor::Shape compressed_shape(const tensor::Shape& input) const override;
  tensor::Tensor compress(const tensor::Tensor& input) const override;
  tensor::Tensor decompress(const tensor::Tensor& packed,
                            const tensor::Shape& original) const override;

  const PartialSerialConfig& config() const { return config_; }
  bool pinned() const { return pinned_ != nullptr; }
  /// The shared chunk-resolution codec driving every chunk launch. Its
  /// stats accumulate the s² launches per call.
  const DctChopCodec& chunk_codec() const { return *chunk_codec_; }

  /// The compiled plan serving a h×w input (pinned plan or PlanCache
  /// resolution).
  std::shared_ptr<const PartialSerialPlan> plan_for(std::size_t height,
                                                    std::size_t width) const;

  /// Bytes of operator state (LHS + RHS) resident while one chunk is in
  /// flight — the quantity the optimization exists to shrink. Pinned
  /// codecs only.
  std::size_t operator_bytes() const;

  /// The *full* working set of one in-flight chunk beyond input+output:
  /// chunk input/packed staging (batch×channels deep) plus the chunk
  /// executor's sandwich scratch. operator_bytes() deliberately excludes
  /// these, which made accel memory-capacity checks optimistic — use this
  /// for capacity accounting. Pinned codecs only.
  std::size_t workspace_bytes(std::size_t batch, std::size_t channels) const;

  /// Operator bytes for an unserialized codec at the full resolution.
  static std::size_t unserialized_operator_bytes(std::size_t n, std::size_t cf,
                                                 std::size_t block = kDefaultBlock);

 private:
  PartialSerialConfig config_;
  obs::Histogram& compress_latency_;
  obs::Histogram& decompress_latency_;
  std::shared_ptr<const PartialSerialPlan> pinned_;  // null when agnostic
  std::unique_ptr<DctChopCodec> chunk_codec_;
};

}  // namespace aic::core
