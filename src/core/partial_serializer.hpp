#pragma once

#include <cstddef>
#include <memory>

#include "core/codec.hpp"
#include "core/dct_chop.hpp"

namespace aic::core {

/// Partial-serialization optimization (§3.5.1).
///
/// Instead of compressing a BD×C×n×n tensor in one shot — which needs
/// LHS/RHS operators of size (CF·n/8)×n that can exceed a compute unit's
/// local memory — the sample is subdivided by a factor `s` into s×s
/// chunks of size (n/s)×(n/s). The chunks are processed *serially* with
/// a codec compiled for the chunk resolution, shrinking the working set
/// by s² at the cost of s² sequential launches.
struct PartialSerialConfig {
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t cf = 4;
  std::size_t block = kDefaultBlock;
  TransformKind transform = TransformKind::kDct2;
  /// Subdivision factor s >= 1; s == 1 degenerates to plain DCT+Chop.
  std::size_t subdivision = 2;
};

class PartialSerialCodec final : public Codec {
 public:
  explicit PartialSerialCodec(PartialSerialConfig config);

  std::string name() const override;
  double compression_ratio() const override;
  tensor::Shape compressed_shape(const tensor::Shape& input) const override;
  tensor::Tensor compress(const tensor::Tensor& input) const override;
  tensor::Tensor decompress(const tensor::Tensor& packed,
                            const tensor::Shape& original) const override;

  const PartialSerialConfig& config() const { return config_; }
  const DctChopCodec& chunk_codec() const { return *chunk_codec_; }

  /// Bytes of operator state (LHS + RHS) resident while one chunk is in
  /// flight — the quantity the optimization exists to shrink.
  std::size_t operator_bytes() const;

  /// Same quantity for an unserialized codec at the full resolution.
  static std::size_t unserialized_operator_bytes(std::size_t n, std::size_t cf,
                                                 std::size_t block = kDefaultBlock);

 private:
  PartialSerialConfig config_;
  std::unique_ptr<DctChopCodec> chunk_codec_;
  std::size_t chunk_h_ = 0;
  std::size_t chunk_w_ = 0;
};

}  // namespace aic::core
