#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace aic::core {

/// Default transform block edge used by JPEG and by the paper (N = 8).
inline constexpr std::size_t kDefaultBlock = 8;

/// The N×N orthonormal DCT-II transform matrix T of Eq. 2:
///
///   T[0][j] = 1/sqrt(N)
///   T[i][j] = sqrt(2/N) * cos(pi * (2j+1) * i / (2N))   for i > 0
///
/// `D = T · A · Tᵀ` applies the 2-D DCT-II to an N×N block A, and because
/// T is orthonormal, `A = Tᵀ · D · T` inverts it exactly.
tensor::Tensor dct_matrix(std::size_t n);

/// Block-diagonal T_L of size n×n with `T = dct_matrix(block)` repeated
/// along the diagonal (Fig. 4). `n` must be a multiple of `block`.
/// `T_L · A · T_Lᵀ` applies the DCT independently to every block×block
/// tile of an n×n input.
tensor::Tensor block_diagonal_dct(std::size_t n,
                                  std::size_t block = kDefaultBlock);

/// Reference (non-matrix) 2-D DCT-II of a single block, direct from the
/// Eq. 1 double sum. O(N⁴); used only to validate the matrix formulation.
tensor::Tensor dct2d_reference(const tensor::Tensor& block);

/// Reference blockwise DCT of an H×W plane: applies `dct2d_reference`
/// tile by tile. Used in tests against `T_L · A · T_Lᵀ`.
tensor::Tensor blockwise_dct_reference(const tensor::Tensor& plane,
                                       std::size_t block = kDefaultBlock);

}  // namespace aic::core
