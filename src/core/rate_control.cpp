#include "core/rate_control.hpp"

#include <sstream>
#include <stdexcept>

#include "core/codec_factory.hpp"
#include "tensor/ops.hpp"

namespace aic::core {

using tensor::Tensor;

namespace {

std::string chop_spec(std::size_t cf, std::size_t block,
                      TransformKind transform, std::size_t height = 0,
                      std::size_t width = 0) {
  std::ostringstream spec;
  spec << "dctchop:cf=" << cf << ",block=" << block
       << ",transform=" << transform_name(transform);
  if (height != 0) spec << ",h=" << height << ",w=" << width;
  return spec.str();
}

RateChoice measure(const Tensor& calibration, std::size_t cf,
                   std::size_t block, TransformKind transform) {
  // Shape-agnostic codec through the factory: the CF sweep re-measures
  // the same calibration shape eight times, so every iteration after the
  // first executes a cache-hit plan with zero operand rebuilds.
  const CodecPtr codec = make_codec(chop_spec(cf, block, transform));
  const Tensor restored = codec->round_trip(calibration);
  RateChoice choice;
  choice.cf = cf;
  choice.compression_ratio = codec->compression_ratio();
  choice.measured_mse = tensor::mse(calibration, restored);
  choice.measured_psnr_db = tensor::psnr(calibration, restored, 1.0);
  return choice;
}

void validate_calibration(const Tensor& calibration, std::size_t block) {
  if (calibration.shape().rank() != 4) {
    throw std::invalid_argument("rate control: calibration must be BCHW");
  }
  if (calibration.shape()[2] % block != 0 ||
      calibration.shape()[3] % block != 0) {
    throw std::invalid_argument(
        "rate control: calibration dims must be block-divisible");
  }
}

}  // namespace

std::optional<RateChoice> choose_chop_factor(const Tensor& calibration,
                                             double max_mse,
                                             std::size_t block,
                                             TransformKind transform) {
  validate_calibration(calibration, block);
  for (std::size_t cf = 1; cf <= block; ++cf) {
    const RateChoice choice = measure(calibration, cf, block, transform);
    if (choice.measured_mse <= max_mse) return choice;
  }
  return std::nullopt;
}

std::optional<RateChoice> choose_chop_factor_psnr(const Tensor& calibration,
                                                  double min_psnr_db,
                                                  std::size_t block,
                                                  TransformKind transform) {
  validate_calibration(calibration, block);
  for (std::size_t cf = 1; cf <= block; ++cf) {
    const RateChoice choice = measure(calibration, cf, block, transform);
    if (choice.measured_psnr_db >= min_psnr_db) return choice;
  }
  return std::nullopt;
}

CodecPtr make_codec_for_choice(const RateChoice& choice, std::size_t height,
                               std::size_t width, std::size_t block,
                               TransformKind transform) {
  return make_codec(chop_spec(choice.cf, block, transform, height, width));
}

std::vector<RateChoice> rate_distortion_curve(const Tensor& calibration,
                                              std::size_t block,
                                              TransformKind transform) {
  validate_calibration(calibration, block);
  std::vector<RateChoice> curve;
  curve.reserve(block);
  for (std::size_t cf = 1; cf <= block; ++cf) {
    curve.push_back(measure(calibration, cf, block, transform));
  }
  return curve;
}

}  // namespace aic::core
