file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_overlap.dir/bench_pipeline_overlap.cpp.o"
  "CMakeFiles/bench_pipeline_overlap.dir/bench_pipeline_overlap.cpp.o.d"
  "bench_pipeline_overlap"
  "bench_pipeline_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
