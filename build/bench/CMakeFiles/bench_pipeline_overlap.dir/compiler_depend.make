# Empty compiler generated dependencies file for bench_pipeline_overlap.
# This may be replaced when dependencies are built.
