# Empty dependencies file for bench_fig17_sg_throughput.
# This may be replaced when dependencies are built.
