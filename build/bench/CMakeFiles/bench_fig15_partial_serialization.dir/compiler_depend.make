# Empty compiler generated dependencies file for bench_fig15_partial_serialization.
# This may be replaced when dependencies are built.
