file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_partial_serialization.dir/bench_fig15_partial_serialization.cpp.o"
  "CMakeFiles/bench_fig15_partial_serialization.dir/bench_fig15_partial_serialization.cpp.o.d"
  "bench_fig15_partial_serialization"
  "bench_fig15_partial_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_partial_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
