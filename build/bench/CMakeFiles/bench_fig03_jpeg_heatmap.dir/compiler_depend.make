# Empty compiler generated dependencies file for bench_fig03_jpeg_heatmap.
# This may be replaced when dependencies are built.
