# Empty compiler generated dependencies file for bench_fig09_zfp_compare.
# This may be replaced when dependencies are built.
