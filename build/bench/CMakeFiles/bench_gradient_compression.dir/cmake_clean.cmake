file(REMOVE_RECURSE
  "CMakeFiles/bench_gradient_compression.dir/bench_gradient_compression.cpp.o"
  "CMakeFiles/bench_gradient_compression.dir/bench_gradient_compression.cpp.o.d"
  "bench_gradient_compression"
  "bench_gradient_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gradient_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
