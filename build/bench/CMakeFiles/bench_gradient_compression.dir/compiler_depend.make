# Empty compiler generated dependencies file for bench_gradient_compression.
# This may be replaced when dependencies are built.
