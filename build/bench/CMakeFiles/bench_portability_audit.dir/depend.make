# Empty dependencies file for bench_portability_audit.
# This may be replaced when dependencies are built.
