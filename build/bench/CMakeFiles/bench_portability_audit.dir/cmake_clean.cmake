file(REMOVE_RECURSE
  "CMakeFiles/bench_portability_audit.dir/bench_portability_audit.cpp.o"
  "CMakeFiles/bench_portability_audit.dir/bench_portability_audit.cpp.o.d"
  "bench_portability_audit"
  "bench_portability_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_portability_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
