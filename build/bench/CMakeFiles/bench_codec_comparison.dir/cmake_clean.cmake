file(REMOVE_RECURSE
  "CMakeFiles/bench_codec_comparison.dir/bench_codec_comparison.cpp.o"
  "CMakeFiles/bench_codec_comparison.dir/bench_codec_comparison.cpp.o.d"
  "bench_codec_comparison"
  "bench_codec_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codec_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
