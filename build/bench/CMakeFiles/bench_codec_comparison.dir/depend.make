# Empty dependencies file for bench_codec_comparison.
# This may be replaced when dependencies are built.
