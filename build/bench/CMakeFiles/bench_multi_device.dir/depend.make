# Empty dependencies file for bench_multi_device.
# This may be replaced when dependencies are built.
