file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_device.dir/bench_multi_device.cpp.o"
  "CMakeFiles/bench_multi_device.dir/bench_multi_device.cpp.o.d"
  "bench_multi_device"
  "bench_multi_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
