file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_gpu.dir/bench_fig14_gpu.cpp.o"
  "CMakeFiles/bench_fig14_gpu.dir/bench_fig14_gpu.cpp.o.d"
  "bench_fig14_gpu"
  "bench_fig14_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
