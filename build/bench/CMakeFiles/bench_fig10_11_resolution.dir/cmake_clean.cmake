file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_resolution.dir/bench_fig10_11_resolution.cpp.o"
  "CMakeFiles/bench_fig10_11_resolution.dir/bench_fig10_11_resolution.cpp.o.d"
  "bench_fig10_11_resolution"
  "bench_fig10_11_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
