# Empty dependencies file for bench_fig10_11_resolution.
# This may be replaced when dependencies are built.
