# Empty compiler generated dependencies file for bench_fig16_sg_accuracy.
# This may be replaced when dependencies are built.
