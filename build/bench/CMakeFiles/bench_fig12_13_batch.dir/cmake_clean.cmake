file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_batch.dir/bench_fig12_13_batch.cpp.o"
  "CMakeFiles/bench_fig12_13_batch.dir/bench_fig12_13_batch.cpp.o.d"
  "bench_fig12_13_batch"
  "bench_fig12_13_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
