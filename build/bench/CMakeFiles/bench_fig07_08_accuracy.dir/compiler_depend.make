# Empty compiler generated dependencies file for bench_fig07_08_accuracy.
# This may be replaced when dependencies are built.
