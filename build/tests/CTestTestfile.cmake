# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
