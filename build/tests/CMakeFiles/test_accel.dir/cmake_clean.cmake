file(REMOVE_RECURSE
  "CMakeFiles/test_accel.dir/accel/test_accelerator.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_accelerator.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_compile.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_compile.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_cost_model.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_cost_model.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_scaling.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_scaling.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_spec.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_spec.cpp.o.d"
  "test_accel"
  "test_accel.pdb"
  "test_accel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
