
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/aic_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/aic_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aic_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/aic_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/aic_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aic_data.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/aic_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/aic_cli.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
