file(REMOVE_RECURSE
  "CMakeFiles/test_baseline.dir/baseline/test_bitstream.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/test_bitstream.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/test_color_quant.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/test_color_quant.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/test_huffman.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/test_huffman.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/test_jpeg.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/test_jpeg.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/test_rle.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/test_rle.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/test_sz_like.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/test_sz_like.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/test_zfp_like.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/test_zfp_like.cpp.o.d"
  "test_baseline"
  "test_baseline.pdb"
  "test_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
