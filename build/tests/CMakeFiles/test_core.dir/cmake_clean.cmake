file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_chop.cpp.o"
  "CMakeFiles/test_core.dir/core/test_chop.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_codec_grid.cpp.o"
  "CMakeFiles/test_core.dir/core/test_codec_grid.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dct.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dct.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dct_chop.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dct_chop.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_metrics.cpp.o"
  "CMakeFiles/test_core.dir/core/test_metrics.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_partial_serializer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_partial_serializer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_rate_control.cpp.o"
  "CMakeFiles/test_core.dir/core/test_rate_control.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_transforms.cpp.o"
  "CMakeFiles/test_core.dir/core/test_transforms.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_triangle.cpp.o"
  "CMakeFiles/test_core.dir/core/test_triangle.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_zigzag.cpp.o"
  "CMakeFiles/test_core.dir/core/test_zigzag.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
