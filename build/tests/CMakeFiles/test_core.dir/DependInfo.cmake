
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_chop.cpp" "tests/CMakeFiles/test_core.dir/core/test_chop.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_chop.cpp.o.d"
  "/root/repo/tests/core/test_codec_grid.cpp" "tests/CMakeFiles/test_core.dir/core/test_codec_grid.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_codec_grid.cpp.o.d"
  "/root/repo/tests/core/test_dct.cpp" "tests/CMakeFiles/test_core.dir/core/test_dct.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dct.cpp.o.d"
  "/root/repo/tests/core/test_dct_chop.cpp" "tests/CMakeFiles/test_core.dir/core/test_dct_chop.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dct_chop.cpp.o.d"
  "/root/repo/tests/core/test_metrics.cpp" "tests/CMakeFiles/test_core.dir/core/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_metrics.cpp.o.d"
  "/root/repo/tests/core/test_partial_serializer.cpp" "tests/CMakeFiles/test_core.dir/core/test_partial_serializer.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_partial_serializer.cpp.o.d"
  "/root/repo/tests/core/test_rate_control.cpp" "tests/CMakeFiles/test_core.dir/core/test_rate_control.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_rate_control.cpp.o.d"
  "/root/repo/tests/core/test_transforms.cpp" "tests/CMakeFiles/test_core.dir/core/test_transforms.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_transforms.cpp.o.d"
  "/root/repo/tests/core/test_triangle.cpp" "tests/CMakeFiles/test_core.dir/core/test_triangle.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_triangle.cpp.o.d"
  "/root/repo/tests/core/test_zigzag.cpp" "tests/CMakeFiles/test_core.dir/core/test_zigzag.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_zigzag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/aic_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/aic_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aic_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/aic_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/aic_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aic_data.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/aic_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/aic_cli.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
