file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_compressed_activation.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_compressed_activation.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_conv2d.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_conv2d.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_distributed.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_distributed.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_layers.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_layers.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_layers_extra.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_layers_extra.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_loss_optim.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_loss_optim.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_norm_container.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_norm_container.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_trainer.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_trainer.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_weight_quantization.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_weight_quantization.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
