
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_compressed_activation.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_compressed_activation.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_compressed_activation.cpp.o.d"
  "/root/repo/tests/nn/test_conv2d.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_conv2d.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_conv2d.cpp.o.d"
  "/root/repo/tests/nn/test_distributed.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_distributed.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_distributed.cpp.o.d"
  "/root/repo/tests/nn/test_layers.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_layers.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_layers.cpp.o.d"
  "/root/repo/tests/nn/test_layers_extra.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_layers_extra.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_layers_extra.cpp.o.d"
  "/root/repo/tests/nn/test_loss_optim.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_loss_optim.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_loss_optim.cpp.o.d"
  "/root/repo/tests/nn/test_norm_container.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_norm_container.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_norm_container.cpp.o.d"
  "/root/repo/tests/nn/test_trainer.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_trainer.cpp.o.d"
  "/root/repo/tests/nn/test_weight_quantization.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_weight_quantization.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_weight_quantization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/aic_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/aic_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aic_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/aic_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/aic_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aic_data.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/aic_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/aic_cli.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
