# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_accelerator_portability "/root/repo/build/examples/accelerator_portability")
set_tests_properties(example_accelerator_portability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_high_res_pipeline "/root/repo/build/examples/high_res_pipeline")
set_tests_properties(example_high_res_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_rate "/root/repo/build/examples/adaptive_rate")
set_tests_properties(example_adaptive_rate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compressed_dataset "/root/repo/build/examples/compressed_dataset")
set_tests_properties(example_compressed_dataset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
