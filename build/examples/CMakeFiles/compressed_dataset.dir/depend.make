# Empty dependencies file for compressed_dataset.
# This may be replaced when dependencies are built.
