file(REMOVE_RECURSE
  "CMakeFiles/compressed_dataset.dir/compressed_dataset.cpp.o"
  "CMakeFiles/compressed_dataset.dir/compressed_dataset.cpp.o.d"
  "compressed_dataset"
  "compressed_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
