file(REMOVE_RECURSE
  "CMakeFiles/adaptive_rate.dir/adaptive_rate.cpp.o"
  "CMakeFiles/adaptive_rate.dir/adaptive_rate.cpp.o.d"
  "adaptive_rate"
  "adaptive_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
