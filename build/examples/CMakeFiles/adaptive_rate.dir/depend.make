# Empty dependencies file for adaptive_rate.
# This may be replaced when dependencies are built.
