file(REMOVE_RECURSE
  "CMakeFiles/accelerator_portability.dir/accelerator_portability.cpp.o"
  "CMakeFiles/accelerator_portability.dir/accelerator_portability.cpp.o.d"
  "accelerator_portability"
  "accelerator_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
