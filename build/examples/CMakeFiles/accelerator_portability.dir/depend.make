# Empty dependencies file for accelerator_portability.
# This may be replaced when dependencies are built.
