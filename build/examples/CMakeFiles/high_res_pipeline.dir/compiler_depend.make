# Empty compiler generated dependencies file for high_res_pipeline.
# This may be replaced when dependencies are built.
