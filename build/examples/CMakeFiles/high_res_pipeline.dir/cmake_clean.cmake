file(REMOVE_RECURSE
  "CMakeFiles/high_res_pipeline.dir/high_res_pipeline.cpp.o"
  "CMakeFiles/high_res_pipeline.dir/high_res_pipeline.cpp.o.d"
  "high_res_pipeline"
  "high_res_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/high_res_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
