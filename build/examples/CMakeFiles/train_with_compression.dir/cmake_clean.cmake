file(REMOVE_RECURSE
  "CMakeFiles/train_with_compression.dir/train_with_compression.cpp.o"
  "CMakeFiles/train_with_compression.dir/train_with_compression.cpp.o.d"
  "train_with_compression"
  "train_with_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_with_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
