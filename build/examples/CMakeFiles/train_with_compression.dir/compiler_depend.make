# Empty compiler generated dependencies file for train_with_compression.
# This may be replaced when dependencies are built.
