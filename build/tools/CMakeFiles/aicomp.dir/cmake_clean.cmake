file(REMOVE_RECURSE
  "CMakeFiles/aicomp.dir/aicomp_main.cpp.o"
  "CMakeFiles/aicomp.dir/aicomp_main.cpp.o.d"
  "aicomp"
  "aicomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aicomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
