# Empty dependencies file for aicomp.
# This may be replaced when dependencies are built.
