
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/container.cpp" "src/nn/CMakeFiles/aic_nn.dir/container.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/container.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/aic_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/distributed.cpp" "src/nn/CMakeFiles/aic_nn.dir/distributed.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/distributed.cpp.o.d"
  "/root/repo/src/nn/gradient_compression.cpp" "src/nn/CMakeFiles/aic_nn.dir/gradient_compression.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/gradient_compression.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/aic_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/layers_extra.cpp" "src/nn/CMakeFiles/aic_nn.dir/layers_extra.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/layers_extra.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/aic_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/aic_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/aic_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/aic_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/aic_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/trainer.cpp.o.d"
  "/root/repo/src/nn/unet.cpp" "src/nn/CMakeFiles/aic_nn.dir/unet.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/unet.cpp.o.d"
  "/root/repo/src/nn/weight_quantization.cpp" "src/nn/CMakeFiles/aic_nn.dir/weight_quantization.cpp.o" "gcc" "src/nn/CMakeFiles/aic_nn.dir/weight_quantization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aic_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
