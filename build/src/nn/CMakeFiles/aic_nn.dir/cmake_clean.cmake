file(REMOVE_RECURSE
  "CMakeFiles/aic_nn.dir/container.cpp.o"
  "CMakeFiles/aic_nn.dir/container.cpp.o.d"
  "CMakeFiles/aic_nn.dir/conv2d.cpp.o"
  "CMakeFiles/aic_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/aic_nn.dir/distributed.cpp.o"
  "CMakeFiles/aic_nn.dir/distributed.cpp.o.d"
  "CMakeFiles/aic_nn.dir/gradient_compression.cpp.o"
  "CMakeFiles/aic_nn.dir/gradient_compression.cpp.o.d"
  "CMakeFiles/aic_nn.dir/layer.cpp.o"
  "CMakeFiles/aic_nn.dir/layer.cpp.o.d"
  "CMakeFiles/aic_nn.dir/layers_extra.cpp.o"
  "CMakeFiles/aic_nn.dir/layers_extra.cpp.o.d"
  "CMakeFiles/aic_nn.dir/loss.cpp.o"
  "CMakeFiles/aic_nn.dir/loss.cpp.o.d"
  "CMakeFiles/aic_nn.dir/models.cpp.o"
  "CMakeFiles/aic_nn.dir/models.cpp.o.d"
  "CMakeFiles/aic_nn.dir/norm.cpp.o"
  "CMakeFiles/aic_nn.dir/norm.cpp.o.d"
  "CMakeFiles/aic_nn.dir/optimizer.cpp.o"
  "CMakeFiles/aic_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/aic_nn.dir/trainer.cpp.o"
  "CMakeFiles/aic_nn.dir/trainer.cpp.o.d"
  "CMakeFiles/aic_nn.dir/unet.cpp.o"
  "CMakeFiles/aic_nn.dir/unet.cpp.o.d"
  "CMakeFiles/aic_nn.dir/weight_quantization.cpp.o"
  "CMakeFiles/aic_nn.dir/weight_quantization.cpp.o.d"
  "libaic_nn.a"
  "libaic_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aic_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
