# Empty dependencies file for aic_nn.
# This may be replaced when dependencies are built.
