file(REMOVE_RECURSE
  "libaic_nn.a"
)
