file(REMOVE_RECURSE
  "CMakeFiles/aic_cli.dir/archive.cpp.o"
  "CMakeFiles/aic_cli.dir/archive.cpp.o.d"
  "CMakeFiles/aic_cli.dir/cli.cpp.o"
  "CMakeFiles/aic_cli.dir/cli.cpp.o.d"
  "libaic_cli.a"
  "libaic_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aic_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
