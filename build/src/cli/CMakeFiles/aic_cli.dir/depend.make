# Empty dependencies file for aic_cli.
# This may be replaced when dependencies are built.
