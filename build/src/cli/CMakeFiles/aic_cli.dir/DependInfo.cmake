
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/archive.cpp" "src/cli/CMakeFiles/aic_cli.dir/archive.cpp.o" "gcc" "src/cli/CMakeFiles/aic_cli.dir/archive.cpp.o.d"
  "/root/repo/src/cli/cli.cpp" "src/cli/CMakeFiles/aic_cli.dir/cli.cpp.o" "gcc" "src/cli/CMakeFiles/aic_cli.dir/cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aic_data.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/aic_io.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aic_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/aic_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
