file(REMOVE_RECURSE
  "libaic_cli.a"
)
