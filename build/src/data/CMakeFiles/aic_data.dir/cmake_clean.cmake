file(REMOVE_RECURSE
  "CMakeFiles/aic_data.dir/benchmarks.cpp.o"
  "CMakeFiles/aic_data.dir/benchmarks.cpp.o.d"
  "CMakeFiles/aic_data.dir/datasets.cpp.o"
  "CMakeFiles/aic_data.dir/datasets.cpp.o.d"
  "CMakeFiles/aic_data.dir/synth.cpp.o"
  "CMakeFiles/aic_data.dir/synth.cpp.o.d"
  "libaic_data.a"
  "libaic_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aic_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
