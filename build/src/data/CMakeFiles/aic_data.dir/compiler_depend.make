# Empty compiler generated dependencies file for aic_data.
# This may be replaced when dependencies are built.
