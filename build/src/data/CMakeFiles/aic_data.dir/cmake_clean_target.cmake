file(REMOVE_RECURSE
  "libaic_data.a"
)
