file(REMOVE_RECURSE
  "CMakeFiles/aic_core.dir/chop.cpp.o"
  "CMakeFiles/aic_core.dir/chop.cpp.o.d"
  "CMakeFiles/aic_core.dir/dct.cpp.o"
  "CMakeFiles/aic_core.dir/dct.cpp.o.d"
  "CMakeFiles/aic_core.dir/dct_chop.cpp.o"
  "CMakeFiles/aic_core.dir/dct_chop.cpp.o.d"
  "CMakeFiles/aic_core.dir/metrics.cpp.o"
  "CMakeFiles/aic_core.dir/metrics.cpp.o.d"
  "CMakeFiles/aic_core.dir/partial_serializer.cpp.o"
  "CMakeFiles/aic_core.dir/partial_serializer.cpp.o.d"
  "CMakeFiles/aic_core.dir/rate_control.cpp.o"
  "CMakeFiles/aic_core.dir/rate_control.cpp.o.d"
  "CMakeFiles/aic_core.dir/transforms.cpp.o"
  "CMakeFiles/aic_core.dir/transforms.cpp.o.d"
  "CMakeFiles/aic_core.dir/triangle.cpp.o"
  "CMakeFiles/aic_core.dir/triangle.cpp.o.d"
  "CMakeFiles/aic_core.dir/zigzag.cpp.o"
  "CMakeFiles/aic_core.dir/zigzag.cpp.o.d"
  "libaic_core.a"
  "libaic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
