
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chop.cpp" "src/core/CMakeFiles/aic_core.dir/chop.cpp.o" "gcc" "src/core/CMakeFiles/aic_core.dir/chop.cpp.o.d"
  "/root/repo/src/core/dct.cpp" "src/core/CMakeFiles/aic_core.dir/dct.cpp.o" "gcc" "src/core/CMakeFiles/aic_core.dir/dct.cpp.o.d"
  "/root/repo/src/core/dct_chop.cpp" "src/core/CMakeFiles/aic_core.dir/dct_chop.cpp.o" "gcc" "src/core/CMakeFiles/aic_core.dir/dct_chop.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/aic_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/aic_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/partial_serializer.cpp" "src/core/CMakeFiles/aic_core.dir/partial_serializer.cpp.o" "gcc" "src/core/CMakeFiles/aic_core.dir/partial_serializer.cpp.o.d"
  "/root/repo/src/core/rate_control.cpp" "src/core/CMakeFiles/aic_core.dir/rate_control.cpp.o" "gcc" "src/core/CMakeFiles/aic_core.dir/rate_control.cpp.o.d"
  "/root/repo/src/core/transforms.cpp" "src/core/CMakeFiles/aic_core.dir/transforms.cpp.o" "gcc" "src/core/CMakeFiles/aic_core.dir/transforms.cpp.o.d"
  "/root/repo/src/core/triangle.cpp" "src/core/CMakeFiles/aic_core.dir/triangle.cpp.o" "gcc" "src/core/CMakeFiles/aic_core.dir/triangle.cpp.o.d"
  "/root/repo/src/core/zigzag.cpp" "src/core/CMakeFiles/aic_core.dir/zigzag.cpp.o" "gcc" "src/core/CMakeFiles/aic_core.dir/zigzag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/aic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aic_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
