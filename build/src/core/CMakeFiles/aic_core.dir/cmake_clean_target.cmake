file(REMOVE_RECURSE
  "libaic_core.a"
)
