# Empty dependencies file for aic_core.
# This may be replaced when dependencies are built.
