
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/env.cpp" "src/runtime/CMakeFiles/aic_runtime.dir/env.cpp.o" "gcc" "src/runtime/CMakeFiles/aic_runtime.dir/env.cpp.o.d"
  "/root/repo/src/runtime/logging.cpp" "src/runtime/CMakeFiles/aic_runtime.dir/logging.cpp.o" "gcc" "src/runtime/CMakeFiles/aic_runtime.dir/logging.cpp.o.d"
  "/root/repo/src/runtime/parallel_for.cpp" "src/runtime/CMakeFiles/aic_runtime.dir/parallel_for.cpp.o" "gcc" "src/runtime/CMakeFiles/aic_runtime.dir/parallel_for.cpp.o.d"
  "/root/repo/src/runtime/rng.cpp" "src/runtime/CMakeFiles/aic_runtime.dir/rng.cpp.o" "gcc" "src/runtime/CMakeFiles/aic_runtime.dir/rng.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/runtime/CMakeFiles/aic_runtime.dir/thread_pool.cpp.o" "gcc" "src/runtime/CMakeFiles/aic_runtime.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
