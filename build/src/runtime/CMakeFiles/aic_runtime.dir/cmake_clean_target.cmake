file(REMOVE_RECURSE
  "libaic_runtime.a"
)
