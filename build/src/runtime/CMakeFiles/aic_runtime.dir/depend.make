# Empty dependencies file for aic_runtime.
# This may be replaced when dependencies are built.
