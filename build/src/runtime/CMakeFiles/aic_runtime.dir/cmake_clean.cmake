file(REMOVE_RECURSE
  "CMakeFiles/aic_runtime.dir/env.cpp.o"
  "CMakeFiles/aic_runtime.dir/env.cpp.o.d"
  "CMakeFiles/aic_runtime.dir/logging.cpp.o"
  "CMakeFiles/aic_runtime.dir/logging.cpp.o.d"
  "CMakeFiles/aic_runtime.dir/parallel_for.cpp.o"
  "CMakeFiles/aic_runtime.dir/parallel_for.cpp.o.d"
  "CMakeFiles/aic_runtime.dir/rng.cpp.o"
  "CMakeFiles/aic_runtime.dir/rng.cpp.o.d"
  "CMakeFiles/aic_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/aic_runtime.dir/thread_pool.cpp.o.d"
  "libaic_runtime.a"
  "libaic_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aic_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
