file(REMOVE_RECURSE
  "CMakeFiles/aic_graph.dir/builders.cpp.o"
  "CMakeFiles/aic_graph.dir/builders.cpp.o.d"
  "CMakeFiles/aic_graph.dir/executor.cpp.o"
  "CMakeFiles/aic_graph.dir/executor.cpp.o.d"
  "CMakeFiles/aic_graph.dir/graph.cpp.o"
  "CMakeFiles/aic_graph.dir/graph.cpp.o.d"
  "CMakeFiles/aic_graph.dir/op.cpp.o"
  "CMakeFiles/aic_graph.dir/op.cpp.o.d"
  "libaic_graph.a"
  "libaic_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aic_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
