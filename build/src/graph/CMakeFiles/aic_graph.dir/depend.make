# Empty dependencies file for aic_graph.
# This may be replaced when dependencies are built.
