file(REMOVE_RECURSE
  "libaic_graph.a"
)
