
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builders.cpp" "src/graph/CMakeFiles/aic_graph.dir/builders.cpp.o" "gcc" "src/graph/CMakeFiles/aic_graph.dir/builders.cpp.o.d"
  "/root/repo/src/graph/executor.cpp" "src/graph/CMakeFiles/aic_graph.dir/executor.cpp.o" "gcc" "src/graph/CMakeFiles/aic_graph.dir/executor.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/aic_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/aic_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/op.cpp" "src/graph/CMakeFiles/aic_graph.dir/op.cpp.o" "gcc" "src/graph/CMakeFiles/aic_graph.dir/op.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aic_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
