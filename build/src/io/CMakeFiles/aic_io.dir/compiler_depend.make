# Empty compiler generated dependencies file for aic_io.
# This may be replaced when dependencies are built.
