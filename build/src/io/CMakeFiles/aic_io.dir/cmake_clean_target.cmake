file(REMOVE_RECURSE
  "libaic_io.a"
)
