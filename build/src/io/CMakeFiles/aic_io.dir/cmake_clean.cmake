file(REMOVE_RECURSE
  "CMakeFiles/aic_io.dir/csv.cpp.o"
  "CMakeFiles/aic_io.dir/csv.cpp.o.d"
  "CMakeFiles/aic_io.dir/table.cpp.o"
  "CMakeFiles/aic_io.dir/table.cpp.o.d"
  "CMakeFiles/aic_io.dir/tensor_io.cpp.o"
  "CMakeFiles/aic_io.dir/tensor_io.cpp.o.d"
  "libaic_io.a"
  "libaic_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aic_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
