# Empty compiler generated dependencies file for aic_tensor.
# This may be replaced when dependencies are built.
