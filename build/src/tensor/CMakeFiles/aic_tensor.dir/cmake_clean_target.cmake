file(REMOVE_RECURSE
  "libaic_tensor.a"
)
