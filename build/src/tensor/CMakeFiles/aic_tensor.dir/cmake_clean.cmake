file(REMOVE_RECURSE
  "CMakeFiles/aic_tensor.dir/dtype.cpp.o"
  "CMakeFiles/aic_tensor.dir/dtype.cpp.o.d"
  "CMakeFiles/aic_tensor.dir/matmul.cpp.o"
  "CMakeFiles/aic_tensor.dir/matmul.cpp.o.d"
  "CMakeFiles/aic_tensor.dir/ops.cpp.o"
  "CMakeFiles/aic_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/aic_tensor.dir/shape.cpp.o"
  "CMakeFiles/aic_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/aic_tensor.dir/tensor.cpp.o"
  "CMakeFiles/aic_tensor.dir/tensor.cpp.o.d"
  "libaic_tensor.a"
  "libaic_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aic_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
