# Empty dependencies file for aic_baseline.
# This may be replaced when dependencies are built.
