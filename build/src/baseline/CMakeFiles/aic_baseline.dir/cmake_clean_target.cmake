file(REMOVE_RECURSE
  "libaic_baseline.a"
)
