file(REMOVE_RECURSE
  "CMakeFiles/aic_baseline.dir/bitstream.cpp.o"
  "CMakeFiles/aic_baseline.dir/bitstream.cpp.o.d"
  "CMakeFiles/aic_baseline.dir/color_quant.cpp.o"
  "CMakeFiles/aic_baseline.dir/color_quant.cpp.o.d"
  "CMakeFiles/aic_baseline.dir/huffman.cpp.o"
  "CMakeFiles/aic_baseline.dir/huffman.cpp.o.d"
  "CMakeFiles/aic_baseline.dir/jpeg_codec.cpp.o"
  "CMakeFiles/aic_baseline.dir/jpeg_codec.cpp.o.d"
  "CMakeFiles/aic_baseline.dir/quant_tables.cpp.o"
  "CMakeFiles/aic_baseline.dir/quant_tables.cpp.o.d"
  "CMakeFiles/aic_baseline.dir/rle.cpp.o"
  "CMakeFiles/aic_baseline.dir/rle.cpp.o.d"
  "CMakeFiles/aic_baseline.dir/sz_like.cpp.o"
  "CMakeFiles/aic_baseline.dir/sz_like.cpp.o.d"
  "CMakeFiles/aic_baseline.dir/zfp_like.cpp.o"
  "CMakeFiles/aic_baseline.dir/zfp_like.cpp.o.d"
  "libaic_baseline.a"
  "libaic_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aic_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
