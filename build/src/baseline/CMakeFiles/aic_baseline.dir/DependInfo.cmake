
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bitstream.cpp" "src/baseline/CMakeFiles/aic_baseline.dir/bitstream.cpp.o" "gcc" "src/baseline/CMakeFiles/aic_baseline.dir/bitstream.cpp.o.d"
  "/root/repo/src/baseline/color_quant.cpp" "src/baseline/CMakeFiles/aic_baseline.dir/color_quant.cpp.o" "gcc" "src/baseline/CMakeFiles/aic_baseline.dir/color_quant.cpp.o.d"
  "/root/repo/src/baseline/huffman.cpp" "src/baseline/CMakeFiles/aic_baseline.dir/huffman.cpp.o" "gcc" "src/baseline/CMakeFiles/aic_baseline.dir/huffman.cpp.o.d"
  "/root/repo/src/baseline/jpeg_codec.cpp" "src/baseline/CMakeFiles/aic_baseline.dir/jpeg_codec.cpp.o" "gcc" "src/baseline/CMakeFiles/aic_baseline.dir/jpeg_codec.cpp.o.d"
  "/root/repo/src/baseline/quant_tables.cpp" "src/baseline/CMakeFiles/aic_baseline.dir/quant_tables.cpp.o" "gcc" "src/baseline/CMakeFiles/aic_baseline.dir/quant_tables.cpp.o.d"
  "/root/repo/src/baseline/rle.cpp" "src/baseline/CMakeFiles/aic_baseline.dir/rle.cpp.o" "gcc" "src/baseline/CMakeFiles/aic_baseline.dir/rle.cpp.o.d"
  "/root/repo/src/baseline/sz_like.cpp" "src/baseline/CMakeFiles/aic_baseline.dir/sz_like.cpp.o" "gcc" "src/baseline/CMakeFiles/aic_baseline.dir/sz_like.cpp.o.d"
  "/root/repo/src/baseline/zfp_like.cpp" "src/baseline/CMakeFiles/aic_baseline.dir/zfp_like.cpp.o" "gcc" "src/baseline/CMakeFiles/aic_baseline.dir/zfp_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aic_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
