file(REMOVE_RECURSE
  "CMakeFiles/aic_accel.dir/accelerator.cpp.o"
  "CMakeFiles/aic_accel.dir/accelerator.cpp.o.d"
  "CMakeFiles/aic_accel.dir/cost_model.cpp.o"
  "CMakeFiles/aic_accel.dir/cost_model.cpp.o.d"
  "CMakeFiles/aic_accel.dir/registry.cpp.o"
  "CMakeFiles/aic_accel.dir/registry.cpp.o.d"
  "CMakeFiles/aic_accel.dir/scaling.cpp.o"
  "CMakeFiles/aic_accel.dir/scaling.cpp.o.d"
  "CMakeFiles/aic_accel.dir/spec.cpp.o"
  "CMakeFiles/aic_accel.dir/spec.cpp.o.d"
  "libaic_accel.a"
  "libaic_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aic_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
