file(REMOVE_RECURSE
  "libaic_accel.a"
)
