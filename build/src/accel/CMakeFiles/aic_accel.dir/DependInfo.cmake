
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accelerator.cpp" "src/accel/CMakeFiles/aic_accel.dir/accelerator.cpp.o" "gcc" "src/accel/CMakeFiles/aic_accel.dir/accelerator.cpp.o.d"
  "/root/repo/src/accel/cost_model.cpp" "src/accel/CMakeFiles/aic_accel.dir/cost_model.cpp.o" "gcc" "src/accel/CMakeFiles/aic_accel.dir/cost_model.cpp.o.d"
  "/root/repo/src/accel/registry.cpp" "src/accel/CMakeFiles/aic_accel.dir/registry.cpp.o" "gcc" "src/accel/CMakeFiles/aic_accel.dir/registry.cpp.o.d"
  "/root/repo/src/accel/scaling.cpp" "src/accel/CMakeFiles/aic_accel.dir/scaling.cpp.o" "gcc" "src/accel/CMakeFiles/aic_accel.dir/scaling.cpp.o.d"
  "/root/repo/src/accel/spec.cpp" "src/accel/CMakeFiles/aic_accel.dir/spec.cpp.o" "gcc" "src/accel/CMakeFiles/aic_accel.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/aic_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aic_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aic_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
