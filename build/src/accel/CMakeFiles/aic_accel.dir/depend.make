# Empty dependencies file for aic_accel.
# This may be replaced when dependencies are built.
